open Riq_mem

(* ---- Store ---- *)

let test_store_rw () =
  let s = Store.create () in
  Alcotest.(check int) "default zero" 0 (Store.read_word s 0x1000);
  Store.write_word s 0x1000 42;
  Alcotest.(check int) "read back" 42 (Store.read_word s 0x1000);
  Store.write_word s 0x1000 0xDEADBEEF;
  Alcotest.(check int) "overwrite" 0xDEADBEEF (Store.read_word s 0x1000);
  (* cross-page addresses are independent *)
  Store.write_word s 0x3FFC 1;
  Store.write_word s 0x4000 2;
  Alcotest.(check int) "page end" 1 (Store.read_word s 0x3FFC);
  Alcotest.(check int) "page start" 2 (Store.read_word s 0x4000)

let test_store_errors () =
  let s = Store.create () in
  Alcotest.(check bool) "misaligned" true
    (try
       ignore (Store.read_word s 0x1001);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative" true
    (try
       Store.write_word s (-4) 0;
       false
     with Invalid_argument _ -> true)

let test_store_float () =
  let s = Store.create () in
  Store.write_float s 0x100 3.14159;
  (* single-precision round-trip *)
  Alcotest.(check (float 0.))
    "single round-trip"
    (Int32.float_of_bits (Int32.bits_of_float 3.14159))
    (Store.read_float s 0x100)

let test_store_copy_equal () =
  let s = Store.create () in
  Store.write_word s 0 1;
  Store.write_word s 0x8000 2;
  let c = Store.copy s in
  Alcotest.(check bool) "copies equal" true (Store.equal s c);
  Store.write_word c 0x8000 3;
  Alcotest.(check bool) "diverge" false (Store.equal s c);
  Alcotest.(check int) "original intact" 2 (Store.read_word s 0x8000)

let test_store_fold () =
  let s = Store.create () in
  Store.write_word s 0x2000 5;
  Store.write_word s 0x1000 4;
  let acc = Store.fold_nonzero s ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc) in
  Alcotest.(check (list (pair int int))) "ascending" [ (0x1000, 4); (0x2000, 5) ] (List.rev acc)

let test_store_subword () =
  let s = Store.create () in
  Store.write_word s 0x100 0x11223344;
  Alcotest.(check int) "byte 0 (little-endian)" 0x44 (Store.read_byte s 0x100);
  Alcotest.(check int) "byte 3" 0x11 (Store.read_byte s 0x103);
  Alcotest.(check int) "half 0" 0x3344 (Store.read_half s 0x100);
  Alcotest.(check int) "half 2" 0x1122 (Store.read_half s 0x102);
  Store.write_byte s 0x101 0xAB;
  Alcotest.(check int) "byte write merges" 0x1122AB44 (Store.read_word s 0x100);
  Store.write_half s 0x102 0xCDEF;
  Alcotest.(check int) "half write merges" 0xCDEFAB44 (Store.read_word s 0x100);
  Alcotest.(check bool) "misaligned half" true
    (try
       ignore (Store.read_half s 0x101);
       false
     with Invalid_argument _ -> true)

(* ---- Cache ---- *)

let mk ?(sets = 4) ?(ways = 2) ?(line = 16) ?(lat = 1) () =
  Cache.create (Cache.config ~name:"t" ~sets ~ways ~line_bytes:line ~hit_latency:lat)

let test_cache_hit_miss () =
  let c = mk () in
  (match Cache.access c ~addr:0x100 ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "cold access must miss");
  (match Cache.access c ~addr:0x104 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "same line must hit");
  Alcotest.(check int) "accesses" 2 (Cache.accesses c);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_lru () =
  (* 1 set, 2 ways, 16-byte lines: address k*16 maps to the single set. *)
  let c = mk ~sets:1 ~ways:2 () in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:16 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false); (* refresh line 0 *)
  ignore (Cache.access c ~addr:32 ~write:false); (* evicts line 16 *)
  Alcotest.(check bool) "line 0 survives" true (Cache.probe c ~addr:0);
  Alcotest.(check bool) "line 16 evicted" false (Cache.probe c ~addr:16);
  Alcotest.(check bool) "line 32 present" true (Cache.probe c ~addr:32)

let test_cache_dirty_eviction () =
  let c = mk ~sets:1 ~ways:1 () in
  ignore (Cache.access c ~addr:0 ~write:true);
  (match Cache.access c ~addr:16 ~write:false with
  | Cache.Miss { dirty_evict = true } -> ()
  | Cache.Miss { dirty_evict = false } -> Alcotest.fail "expected dirty eviction"
  | Cache.Hit -> Alcotest.fail "expected miss");
  Alcotest.(check int) "dirty evictions" 1 (Cache.dirty_evictions c)

let test_cache_flush () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:true);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.probe c ~addr:0)

let test_cache_config_validation () =
  Alcotest.(check bool) "non-pow2 sets" true
    (try
       ignore (Cache.config ~name:"x" ~sets:3 ~ways:1 ~line_bytes:16 ~hit_latency:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "size" 32768
    (Cache.size_bytes (Cache.config ~name:"x" ~sets:512 ~ways:2 ~line_bytes:32 ~hit_latency:1))

(* Wrong-path address arithmetic produces negative addresses, which the
   index computation must route through the division fallback ([lsr] on a
   negative int would index a wild line). The fallback truncates toward
   zero, so bytes -15..15 share line index 0 with 16-byte lines; distinct
   negative lines must still be distinct and stably cacheable. *)
let test_cache_negative_addr_fallback () =
  let c = mk ~sets:4 ~ways:2 ~line:16 () in
  Alcotest.(check int) "toward-zero: -1 shares line 0" 0
    (Cache.line_index c ~addr:(-1));
  Alcotest.(check int) "toward-zero: -15 shares line 0" 0
    (Cache.line_index c ~addr:(-15));
  Alcotest.(check int) "-16 is line -1" (-1) (Cache.line_index c ~addr:(-16));
  Alcotest.(check int) "-32 is line -2" (-2) (Cache.line_index c ~addr:(-32));
  (match Cache.access c ~addr:(-64) ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "cold negative access must miss");
  (match Cache.access c ~addr:(-64) ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "negative line must be cacheable");
  (match Cache.access c ~addr:(-52) ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "-52 (line -3) must not alias -64 (line -4)");
  Alcotest.(check bool) "negative line probes back" true
    (Cache.probe c ~addr:(-64));
  (* The shared line 0: a negative access warms it for positive peers. *)
  ignore (Cache.access c ~addr:(-3) ~write:false);
  (match Cache.access c ~addr:8 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "-3 and 8 both live on line 0")

(* qcheck: the cache hit/miss sequence matches a naive model with the same
   geometry (per-set LRU lists). *)
let naive_model ~sets ~ways ~line =
  let table = Array.make sets [] in
  fun addr ->
    let lineno = addr / line in
    let set = lineno mod sets in
    let tag = lineno / sets in
    let l = table.(set) in
    let hit = List.mem tag l in
    let l = tag :: List.filter (fun t -> t <> tag) l in
    let l = if List.length l > ways then List.filteri (fun i _ -> i < ways) l else l in
    table.(set) <- l;
    hit

let prop_cache_vs_model =
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:200
    QCheck.(list_of_size Gen.(int_range 50 200) (int_bound 1023))
    (fun addrs ->
      let c = mk ~sets:4 ~ways:2 ~line:16 () in
      let m = naive_model ~sets:4 ~ways:2 ~line:16 in
      List.for_all
        (fun a ->
          let addr = a * 4 in
          let hw = match Cache.access c ~addr ~write:false with Cache.Hit -> true | Cache.Miss _ -> false in
          hw = m addr)
        addrs)

(* ---- Hierarchy ---- *)

let test_hierarchy_latencies () =
  let h = Hierarchy.create Hierarchy.baseline in
  (* Cold access: ITLB miss + L1 miss + L2 miss + DRAM. *)
  let cold = Hierarchy.fetch h ~addr:0x1000 () in
  Alcotest.(check bool) "cold is slow" true (cold > 80);
  let warm = Hierarchy.fetch h ~addr:0x1000 () in
  Alcotest.(check int) "warm is L1 hit" 1 warm;
  (* L1-evicted but L2-resident data returns in L2 time. *)
  let d1 = Hierarchy.data h ~addr:0x10000 ~write:false () in
  Alcotest.(check bool) "cold data" true (d1 > 80);
  let d2 = Hierarchy.data h ~addr:0x10000 ~write:false () in
  Alcotest.(check int) "warm data" 1 d2

let test_hierarchy_write_buffer () =
  let h = Hierarchy.create Hierarchy.baseline in
  ignore (Hierarchy.data h ~addr:0x2000 ~write:false ());
  let w = Hierarchy.data h ~addr:0x2000 ~write:true () in
  Alcotest.(check int) "write hits buffer" 1 w

let test_hierarchy_pending_fill () =
  let h = Hierarchy.create Hierarchy.baseline in
  let lat1 = Hierarchy.data h ~now:100 ~addr:0x5000 ~write:false () in
  Alcotest.(check bool) "miss" true (lat1 > 1);
  (* A second access to the same line 10 cycles later waits for the rest
     of the fill, not 1 cycle. The first access also paid a TLB-miss
     penalty, which is not part of the line fill. *)
  let tlb = Hierarchy.baseline.Hierarchy.tlb_miss_penalty in
  let lat2 = Hierarchy.data h ~now:110 ~addr:0x5004 ~write:false () in
  Alcotest.(check int) "remaining fill time" (lat1 - tlb - 10) lat2;
  (* After the fill completes it is a plain hit. *)
  let lat3 = Hierarchy.data h ~now:(100 + lat1 + 1) ~addr:0x5008 ~write:false () in
  Alcotest.(check int) "after fill" 1 lat3

let test_hierarchy_counters () =
  let h = Hierarchy.create Hierarchy.baseline in
  ignore (Hierarchy.data h ~addr:0x400000 ~write:false ());
  Alcotest.(check int) "dram fills" 1 (Hierarchy.mem_accesses h);
  Alcotest.(check int) "l1d accesses" 1 (Cache.accesses (Hierarchy.l1d h));
  Hierarchy.reset_stats h;
  Alcotest.(check int) "reset" 0 (Cache.accesses (Hierarchy.l1d h))

let suites =
  [
    ( "mem",
      [
        Alcotest.test_case "store read/write" `Quick test_store_rw;
        Alcotest.test_case "store address errors" `Quick test_store_errors;
        Alcotest.test_case "store float round-trip" `Quick test_store_float;
        Alcotest.test_case "store copy/equal" `Quick test_store_copy_equal;
        Alcotest.test_case "store fold order" `Quick test_store_fold;
        Alcotest.test_case "store sub-word access" `Quick test_store_subword;
        Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "cache LRU" `Quick test_cache_lru;
        Alcotest.test_case "cache dirty eviction" `Quick test_cache_dirty_eviction;
        Alcotest.test_case "cache flush" `Quick test_cache_flush;
        Alcotest.test_case "cache config validation" `Quick test_cache_config_validation;
        Alcotest.test_case "cache negative-address fallback" `Quick
          test_cache_negative_addr_fallback;
        Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
        Alcotest.test_case "hierarchy write buffer" `Quick test_hierarchy_write_buffer;
        Alcotest.test_case "hierarchy pending fill" `Quick test_hierarchy_pending_fill;
        Alcotest.test_case "hierarchy counters" `Quick test_hierarchy_counters;
        QCheck_alcotest.to_alcotest prop_cache_vs_model;
      ] );
  ]

let test_hierarchy_dirty_writeback_reaches_l2 () =
  let h = Hierarchy.create Hierarchy.baseline in
  (* dirty a line, then evict it with 4 conflicting lines (4-way L1D):
     the write-back must appear as an extra L2 access *)
  ignore (Hierarchy.data h ~addr:0x0 ~write:true ());
  let l2_before = Cache.accesses (Hierarchy.l2 h) in
  let stride = 256 * 32 in
  for k = 1 to 4 do
    ignore (Hierarchy.data h ~addr:(k * stride) ~write:false ())
  done;
  let l2_delta = Cache.accesses (Hierarchy.l2 h) - l2_before in
  (* 4 fills + 1 write-back *)
  Alcotest.(check int) "write-back counted" 5 l2_delta

let test_l0_miss_penalty () =
  let cfg =
    { Hierarchy.baseline with
      Hierarchy.l0i =
        Some (Cache.config ~name:"il0" ~sets:16 ~ways:1 ~line_bytes:32 ~hit_latency:1) }
  in
  let h = Hierarchy.create cfg in
  ignore (Hierarchy.fetch h ~addr:0x1000 ()); (* cold: fills L0 and L1 *)
  let hit = Hierarchy.fetch h ~addr:0x1000 () in
  Alcotest.(check int) "L0 hit is 1 cycle" 1 hit;
  (* evict the L0 line (direct-mapped, 16 sets): same set, different tag *)
  ignore (Hierarchy.fetch h ~addr:(0x1000 + (16 * 32)) ());
  let after_evict = Hierarchy.fetch h ~addr:0x1000 () in
  (* L0 miss + L1 hit: 1 + 1 *)
  Alcotest.(check int) "L0 miss adds a cycle" 2 after_evict

let extra_suites =
  [
    ( "mem-extra",
      [
        Alcotest.test_case "dirty write-back reaches L2" `Quick
          test_hierarchy_dirty_writeback_reaches_l2;
        Alcotest.test_case "filter-cache miss penalty" `Quick test_l0_miss_penalty;
      ] );
  ]
