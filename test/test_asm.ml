open Riq_isa
open Riq_asm

(* ---- Builder ---- *)

let test_builder_labels () =
  let b = Builder.create () in
  Builder.label b "start";
  Builder.emit b Insn.Nop;
  Builder.br b Insn.Bne (Reg.r 1) Reg.zero "start";
  Builder.emit b Insn.Halt;
  let p = Builder.finish b in
  Alcotest.(check int) "code length" 3 (Array.length p.Program.code);
  (match p.Program.code.(1) with
  | Insn.Br (Bne, _, _, off) -> Alcotest.(check int) "backward offset" (-2) off
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i));
  Alcotest.(check (option int)) "label address" (Some p.Program.text_base)
    (Program.address_of p "start")

let test_builder_forward_label () =
  let b = Builder.create () in
  Builder.br b Insn.Beq Reg.zero Reg.zero "end";
  Builder.emit b Insn.Nop;
  Builder.label b "end";
  Builder.emit b Insn.Halt;
  let p = Builder.finish b in
  match p.Program.code.(0) with
  | Insn.Br (_, _, _, off) -> Alcotest.(check int) "forward offset" 1 off
  | i -> Alcotest.failf "unexpected %s" (Insn.to_string i)

let test_builder_undefined_label () =
  let b = Builder.create () in
  Builder.j b "nowhere";
  Alcotest.(check bool) "undefined label raises" true
    (try
       ignore (Builder.finish b);
       false
     with Builder.Resolve_error { label = "nowhere"; _ } -> true)

let test_builder_redefined_label () =
  let b = Builder.create () in
  Builder.label b "x";
  Alcotest.(check bool) "redefinition raises" true
    (try
       Builder.label b "x";
       false
     with Invalid_argument _ -> true)

let test_builder_li () =
  let run v =
    let b = Builder.create () in
    Builder.li b (Reg.r 2) v;
    Builder.emit b Insn.Halt;
    let p = Builder.finish b in
    let m = Riq_interp.Machine.create p in
    ignore (Riq_interp.Machine.run m);
    Riq_interp.Machine.reg m (Reg.r 2)
  in
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (run v))
    [ 0; 1; -1; 32767; -32768; 65535; 0x12345678; -2147483648; 2147483647 ]

let test_builder_la_lf () =
  let b = Builder.create () in
  Builder.data_float b "c" [| 2.5 |];
  Builder.la b (Reg.r 3) "c";
  Builder.lf b (Reg.f 4) 7.25;
  Builder.emit b Insn.Halt;
  let p = Builder.finish b in
  let m = Riq_interp.Machine.create p in
  ignore (Riq_interp.Machine.run m);
  Alcotest.(check (option int)) "la value"
    (Program.address_of p "c")
    (Some (Riq_interp.Machine.reg m (Reg.r 3)));
  Alcotest.(check (float 0.)) "lf value" 7.25 (Riq_interp.Machine.freg m (Reg.f 4))

let test_builder_data_space () =
  let b = Builder.create () in
  Builder.data_word b "a" [| 1; 2; 3 |];
  Builder.data_space b "z" 4;
  Builder.data_word b "b" [| 9 |];
  Builder.emit b Insn.Halt;
  let p = Builder.finish b in
  let a = Option.get (Program.address_of p "a") in
  let z = Option.get (Program.address_of p "z") in
  let bb = Option.get (Program.address_of p "b") in
  Alcotest.(check bool) "layout ordered" true (a < z && z < bb);
  Alcotest.(check bool) "no overlap" true (z >= a + 12 && bb >= z + 16)

(* ---- Program ---- *)

let test_program_insn_at () =
  let p = Program.make ~text_base:0x1000 [| Insn.Nop; Insn.Halt |] in
  Alcotest.(check bool) "first" true (Program.insn_at p 0x1000 = Some Insn.Nop);
  Alcotest.(check bool) "second" true (Program.insn_at p 0x1004 = Some Insn.Halt);
  Alcotest.(check bool) "past end" true (Program.insn_at p 0x1008 = None);
  Alcotest.(check bool) "before" true (Program.insn_at p 0x0FFC = None);
  Alcotest.(check bool) "misaligned" true (Program.insn_at p 0x1002 = None)

let test_program_load () =
  let p =
    Program.make ~text_base:0x1000
      ~data:[ Program.Words { base = 0x2000; values = [| 42 |] } ]
      [| Insn.Halt |]
  in
  let words = Hashtbl.create 8 in
  Program.load p ~write_word:(fun addr w -> Hashtbl.replace words addr w);
  Alcotest.(check (option int)) "data word" (Some 42) (Hashtbl.find_opt words 0x2000);
  Alcotest.(check (option int)) "text word"
    (Some (Encode.encode Insn.Halt))
    (Hashtbl.find_opt words 0x1000)

let test_program_validation () =
  Alcotest.(check bool) "empty code" true
    (try
       ignore (Program.make [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "misaligned base" true
    (try
       ignore (Program.make ~text_base:0x1002 [| Insn.Halt |]);
       false
     with Invalid_argument _ -> true)

(* ---- Parse ---- *)

let test_parse_roundtrip () =
  let src =
    {|
start:
    addi r2, r0, 10
    sll  r3, r2, 2
    sub  r4, r3, r2
loop:
    addi r2, r2, -1
    bgtz r2, loop
    lw   r5, 4(r4)
    s.s  f1, -8(r4)
    fadd f2, f1, f1
    fneg f3, f2
    feq  r6, f2, f3
    jal  sub1
    j    done
sub1:
    jr   r31
done:
    halt
|}
  in
  match Parse.program ~text_base:0x4000 src with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok p ->
      Alcotest.(check int) "instruction count" 14 (Array.length p.Program.code);
      (match p.Program.code.(4) with
      | Insn.Br (Bgtz, _, _, -2) -> ()
      | i -> Alcotest.failf "branch resolved wrong: %s" (Insn.to_string i));
      (match p.Program.code.(10) with
      | Insn.Jal tgt -> Alcotest.(check int) "jal target" ((0x4000 / 4) + 12) tgt
      | i -> Alcotest.failf "jal wrong: %s" (Insn.to_string i))

let test_parse_data_directives () =
  let src = {|
.word tab 1 2 3
.float fs 1.5 -0.25
.space buf 8
    la r2, tab
    halt
|} in
  let p = Parse.program_exn src in
  Alcotest.(check bool) "tab defined" true (Program.address_of p "tab" <> None);
  Alcotest.(check bool) "fs defined" true (Program.address_of p "fs" <> None);
  Alcotest.(check bool) "buf defined" true (Program.address_of p "buf" <> None)

let test_parse_errors () =
  let bad = [ "frobnicate r1, r2"; "addi r2 r0"; "lw r1, nonsense"; "addi r99, r0, 1" ] in
  List.iter
    (fun src ->
      match Parse.program src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" src)
    bad

(* Every parse error names the source line it arose on — including label
   resolution errors, which surface only at [Builder.finish] and are
   mapped back to the referencing line. *)
let test_parse_error_lines () =
  let check_line src expected_prefix =
    match Parse.program src with
    | Ok _ -> Alcotest.failf "accepted %S" src
    | Error msg ->
        if not (String.length msg >= String.length expected_prefix
                && String.sub msg 0 (String.length expected_prefix) = expected_prefix)
        then Alcotest.failf "error %S does not start with %S" msg expected_prefix
  in
  check_line "nop\nfrobnicate r1, r2\nhalt\n" "line 2:";
  check_line "nop\nnop\naddi r99, r0, 1\n" "line 3:";
  (* undefined label: reported at the line of the reference, not swallowed *)
  check_line "nop\nj nowhere\nhalt\n" "line 2: undefined label";
  check_line "nop\nnop\nbgtz r1, missing\nhalt\n" "line 3: undefined label";
  check_line "nop\nla r8, nodata\nhalt\n" "line 2: undefined label";
  (* label redefinition is a per-line builder failure *)
  check_line "x:\nnop\nx:\nhalt\n" "line 3:";
  (* out-of-range branch names the referencing line *)
  let far =
    "top:\n" ^ String.concat "" (List.init 40000 (fun _ -> "nop\n"))
    ^ "bne r1, r0, top\nhalt\n"
  in
  check_line far "line 40002: branch out of range"

let test_parse_comments_blank () =
  let src = "# leading comment\n\n   ; another\nhalt # trailing\n" in
  let p = Parse.program_exn src in
  Alcotest.(check int) "one instruction" 1 (Array.length p.Program.code)

(* Printing then reparsing any encodable instruction gives it back. *)
let prop_print_parse =
  QCheck.Test.make ~name:"to_string/parse round-trip" ~count:500
    (QCheck.make ~print:Insn.to_string Test_isa.gen_insn)
    (fun insn ->
      match insn with
      | Insn.J _ | Jal _ | Br _ -> true (* targets print as resolved numbers; skip *)
      | _ -> (
          let src = Insn.to_string insn ^ "\nhalt\n" in
          match Parse.program src with
          | Ok p -> Insn.equal p.Program.code.(0) insn
          | Error _ -> false))

let test_parse_line_map () =
  (* [li] with a large constant expands to lui+ori: both words must map
     back to the one source line, and every other pc to its own line. *)
  let src = "start:\n    li   r2, 123456\n    addi r3, r2, 1\nloop:\n    bgtz r3, loop\n    halt\n" in
  let p, lines =
    match Parse.program_with_lines src with
    | Ok r -> r
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let base = p.Program.text_base in
  Alcotest.(check (option int)) "li word 1" (Some 2) (Hashtbl.find_opt lines base);
  Alcotest.(check (option int)) "li word 2" (Some 2) (Hashtbl.find_opt lines (base + 4));
  Alcotest.(check (option int)) "addi" (Some 3) (Hashtbl.find_opt lines (base + 8));
  Alcotest.(check (option int)) "branch" (Some 5) (Hashtbl.find_opt lines (base + 12));
  Alcotest.(check (option int)) "halt" (Some 6) (Hashtbl.find_opt lines (base + 16));
  Alcotest.(check int) "one entry per word" (Array.length p.Program.code)
    (Hashtbl.length lines)

let suites =
  [
    ( "asm",
      [
        Alcotest.test_case "builder labels" `Quick test_builder_labels;
        Alcotest.test_case "builder forward label" `Quick test_builder_forward_label;
        Alcotest.test_case "builder undefined label" `Quick test_builder_undefined_label;
        Alcotest.test_case "builder redefined label" `Quick test_builder_redefined_label;
        Alcotest.test_case "builder li constants" `Quick test_builder_li;
        Alcotest.test_case "builder la/lf" `Quick test_builder_la_lf;
        Alcotest.test_case "builder data layout" `Quick test_builder_data_space;
        Alcotest.test_case "program insn_at" `Quick test_program_insn_at;
        Alcotest.test_case "program load" `Quick test_program_load;
        Alcotest.test_case "program validation" `Quick test_program_validation;
        Alcotest.test_case "parse round-trip program" `Quick test_parse_roundtrip;
        Alcotest.test_case "parse data directives" `Quick test_parse_data_directives;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "parse error line numbers" `Quick test_parse_error_lines;
        Alcotest.test_case "parse comments" `Quick test_parse_comments_blank;
        Alcotest.test_case "parse line map" `Quick test_parse_line_map;
        QCheck_alcotest.to_alcotest prop_print_parse;
      ] );
  ]

let test_builder_branch_out_of_range () =
  let b = Builder.create () in
  Builder.label b "top";
  (* 40000 instructions forward is beyond a 16-bit word offset *)
  for _ = 1 to 40000 do
    Builder.emit b Insn.Nop
  done;
  Builder.br b Insn.Bne (Reg.r 1) Reg.zero "top";
  Builder.emit b Insn.Halt;
  Alcotest.(check bool) "finish raises" true
    (try
       ignore (Builder.finish b);
       false
     with Builder.Resolve_error { label = "top"; _ } -> true)

let test_builder_entry_label () =
  let b = Builder.create () in
  Builder.emit b Insn.Nop;
  Builder.label b "go";
  Builder.emit b Insn.Halt;
  let p = Builder.finish ~entry_label:"go" b in
  Alcotest.(check int) "entry at label" (p.Program.text_base + 4) p.Program.entry

let test_builder_fresh_labels_unique () =
  let b = Builder.create () in
  let l1 = Builder.fresh_label b "x" in
  let l2 = Builder.fresh_label b "x" in
  Alcotest.(check bool) "unique" true (l1 <> l2)

let extra_suites =
  [
    ( "asm-edge",
      [
        Alcotest.test_case "branch out of range" `Quick test_builder_branch_out_of_range;
        Alcotest.test_case "entry label" `Quick test_builder_entry_label;
        Alcotest.test_case "fresh labels unique" `Quick test_builder_fresh_labels_unique;
      ] );
  ]
