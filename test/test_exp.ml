(* The experiment engine: fingerprint stability, the content-addressed
   cache, and the guarantee the whole subsystem rests on — a parallel
   sweep is bit-identical to a sequential one. *)

open Riq_asm
open Riq_ooo
open Riq_harness
open Riq_workloads
open Riq_exp

let tiny_program =
  Parse.program_exn
    {|
    li r2, 0
    li r3, 0
loop:
    add r2, r2, r3
    addi r3, r3, 1
    slti r4, r3, 50
    bne r4, r0, loop
    halt
|}

let tiny_job ?(check = false) ?(cycle_limit = Job.default_cycle_limit) () =
  Job.make ~check ~cycle_limit Config.baseline tiny_program

let with_temp_cache f =
  let root = Filename.temp_dir "riq-cache-test" "" in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f (Cache.open_ ~root ()))

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_deterministic () =
  let fp1 = Job.fingerprint (tiny_job ()) in
  let fp2 = Job.fingerprint (tiny_job ()) in
  Alcotest.(check string) "same job, same fingerprint" fp1 fp2;
  Alcotest.(check int) "hex md5 length" 32 (String.length fp1)

let test_fingerprint_sensitivity () =
  let fp = Job.fingerprint (tiny_job ()) in
  let with_check = Job.fingerprint (tiny_job ~check:true ()) in
  let with_limit = Job.fingerprint (tiny_job ~cycle_limit:1234 ()) in
  let bigger_iq =
    Job.fingerprint (Job.make (Config.with_iq_size Config.baseline 128) tiny_program)
  in
  let reuse_cfg = Job.fingerprint (Job.make Config.reuse tiny_program) in
  let fps = [ fp; with_check; with_limit; bigger_iq; reuse_cfg ] in
  Alcotest.(check int) "all distinct" (List.length fps)
    (List.length (List.sort_uniq compare fps))

(* The property the on-disk cache depends on: the fingerprint of the same
   job computed in a different process is byte-identical. *)
let test_fingerprint_cross_process () =
  if not (Pool.available ()) then ()
  else begin
    let job = Job.make ~check:true (Config.with_iq_size Config.reuse 128) tiny_program in
    let parent_fp = Job.fingerprint job in
    let r, w = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        Unix.close r;
        let fp = Bytes.of_string (Job.fingerprint job) in
        let rec write_all off =
          if off < Bytes.length fp then
            write_all (off + Unix.write w fp off (Bytes.length fp - off))
        in
        write_all 0;
        Unix.close w;
        Unix._exit 0
    | pid ->
        Unix.close w;
        let buf = Buffer.create 32 in
        let chunk = Bytes.create 64 in
        let rec drain () =
          let n = Unix.read r chunk 0 64 in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
          end
        in
        drain ();
        Unix.close r;
        ignore (Unix.waitpid [] pid);
        Alcotest.(check string) "child fingerprint matches parent" parent_fp
          (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_round_trip () =
  with_temp_cache (fun cache ->
      let job = tiny_job () in
      let key = Job.fingerprint job in
      Alcotest.(check bool) "cold miss" true (Cache.find cache key = None);
      let outcome = Runner.execute job in
      Alcotest.(check bool) "tiny job succeeds" true (Result.is_ok outcome);
      Cache.store cache key outcome;
      (match Cache.find cache key with
      | None -> Alcotest.fail "stored entry not found"
      | Some cached -> Alcotest.(check bool) "bit-identical round trip" true (cached = outcome));
      (* Deterministic errors cache too. *)
      let err : Outcome.t = Error (Outcome.Cycle_limit_exceeded 42) in
      let key2 = Job.fingerprint (tiny_job ~cycle_limit:42 ()) in
      Cache.store cache key2 err;
      Alcotest.(check bool) "error round trip" true (Cache.find cache key2 = Some err);
      (* Host-dependent failures never do. *)
      let key3 = Job.fingerprint (tiny_job ~cycle_limit:43 ()) in
      Cache.store cache key3 (Error (Outcome.Worker_crashed "boom"));
      Alcotest.(check bool) "crash not cached" true (Cache.find cache key3 = None))

let test_cache_corruption_is_miss () =
  with_temp_cache (fun cache ->
      let job = tiny_job () in
      let key = Job.fingerprint job in
      Cache.store cache key (Runner.execute job);
      let path = Cache.path cache key in
      let oc = open_out path in
      output_string oc "garbage";
      close_out oc;
      Alcotest.(check bool) "corrupt entry reads as miss" true (Cache.find cache key = None))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let small_benchmarks () = [ Workloads.find "tsf"; Workloads.find "wss" ]

(* The acceptance property: a 4-worker parallel sweep is bit-identical to
   the sequential sweep. Structural equality covers every statistic and
   every power number in every cell. *)
let test_parallel_sweep_bit_identical () =
  let sizes = [ 32; 64 ] in
  let benchmarks = small_benchmarks () in
  let sequential = Sweep.run ~sizes ~benchmarks ~check:false () in
  let parallel =
    Sweep.run ~engine:(Engine.create ~workers:4 ()) ~sizes ~benchmarks ~check:false ()
  in
  (* [sim_seconds] measures the host, not the job — normalize it away
     before the structural comparison (see [Outcome.zero_timing]). *)
  let norm_cells cells =
    List.map
      (fun (bench, per_size) ->
        ( bench,
          List.map
            (fun (size, c) ->
              let z (r : Run.result) = { r with Run.sim_seconds = 0. } in
              (size, { Sweep.baseline = z c.Sweep.baseline; reuse = z c.Sweep.reuse }))
            per_size ))
      cells
  in
  Alcotest.(check bool) "cells bit-identical" true
    (norm_cells sequential.Sweep.cells = norm_cells parallel.Sweep.cells)

let test_warm_cache_executes_nothing () =
  with_temp_cache (fun cache ->
      let jobs = [| tiny_job (); Job.make Config.reuse tiny_program |] in
      let cold = Engine.create ~cache () in
      let cold_out = Engine.run cold jobs in
      Alcotest.(check int) "cold run simulates" 2 (Engine.stats cold).Engine.executed;
      let warm = Engine.create ~cache ~workers:2 () in
      let warm_out = Engine.run warm jobs in
      let s = Engine.stats warm in
      Alcotest.(check int) "warm run simulates nothing" 0 s.Engine.executed;
      Alcotest.(check int) "every job a cache hit" 2 s.Engine.cache_hits;
      Alcotest.(check bool) "warm results identical" true (cold_out = warm_out))

let test_engine_dedup () =
  let jobs = [| tiny_job (); tiny_job (); tiny_job () |] in
  let engine = Engine.create () in
  let out = Engine.run engine jobs in
  let s = Engine.stats engine in
  Alcotest.(check int) "one execution" 1 s.Engine.executed;
  Alcotest.(check int) "two deduped" 2 s.Engine.deduped;
  Alcotest.(check bool) "identical outcomes" true (out.(0) = out.(1) && out.(1) = out.(2))

(* One diverging job must not take the batch down — and must keep its
   structured error. Run through the pool to exercise the worker path. *)
let test_per_job_failure_recorded () =
  let jobs = [| tiny_job (); tiny_job ~cycle_limit:10 () |] in
  let engine = Engine.create ~workers:2 () in
  let out = Engine.run engine jobs in
  Alcotest.(check bool) "good job ok" true (Result.is_ok out.(0));
  Alcotest.(check bool) "starved job structured" true
    (out.(1) = Error (Outcome.Cycle_limit_exceeded 10));
  Alcotest.(check int) "failure counted" 1 (Engine.stats engine).Engine.failures

let test_run_simulate_result () =
  match Run.simulate_result ~cycle_limit:10 Config.baseline tiny_program with
  | Ok _ -> Alcotest.fail "expected cycle-limit error"
  | Error e ->
      Alcotest.(check bool) "structured error" true (e = Run.Cycle_limit_exceeded 10);
      (* The raising wrapper still raises for legacy call sites. *)
      Alcotest.(check bool) "wrapper raises" true
        (try
           ignore (Run.simulate ~cycle_limit:10 Config.baseline tiny_program);
           false
         with Failure _ -> true)

let test_json_export () =
  let sizes = [ 32 ] in
  let benchmarks = [ Workloads.find "tsf" ] in
  let engine = Engine.create () in
  let sweep = Sweep.run ~engine ~sizes ~benchmarks ~check:false () in
  let s = Riq_util.Json.to_string (Sweep.to_json ~engine sweep) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("export contains " ^ needle) true
        (let n = String.length needle and h = String.length s in
         let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
         go 0))
    [
      "\"schema\":\"riq-sweep/2\"";
      "\"benchmark\":\"tsf\"";
      "\"iq_size\":32";
      "\"gated_fraction\"";
      "\"power\"";
      "\"engine\"";
      "\"executed\":2";
    ]

let test_json_printer () =
  let open Riq_util.Json in
  Alcotest.(check string) "compact"
    {|{"a":1,"b":[true,null,"x\n"],"c":{"d":0.5}}|}
    (to_string
       (Obj [ ("a", Int 1); ("b", List [ Bool true; Null; String "x\n" ]); ("c", Obj [ ("d", Float 0.5) ]) ]));
  Alcotest.(check string) "nan is null" {|[null]|} (to_string (List [ Float Float.nan ]))

let suites =
  [
    ( "exp",
      [
        Alcotest.test_case "fingerprint deterministic" `Quick test_fingerprint_deterministic;
        Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
        Alcotest.test_case "fingerprint cross-process" `Quick test_fingerprint_cross_process;
        Alcotest.test_case "cache round trip" `Quick test_cache_round_trip;
        Alcotest.test_case "cache corruption" `Quick test_cache_corruption_is_miss;
        Alcotest.test_case "parallel sweep bit-identical" `Slow
          test_parallel_sweep_bit_identical;
        Alcotest.test_case "warm cache executes nothing" `Quick
          test_warm_cache_executes_nothing;
        Alcotest.test_case "engine dedup" `Quick test_engine_dedup;
        Alcotest.test_case "per-job failure recorded" `Quick test_per_job_failure_recorded;
        Alcotest.test_case "run simulate_result" `Quick test_run_simulate_result;
        Alcotest.test_case "sweep json export" `Slow test_json_export;
        Alcotest.test_case "json printer" `Quick test_json_printer;
      ] );
  ]
