(* Test entry point: every module contributes its own suites. *)

let () =
  Alcotest.run "riq"
    (Test_util.suites @ Test_util.csv_suites @ Test_isa.suites @ Test_asm.suites @ Test_asm.extra_suites @ Test_interp.suites
   @ Test_mem.suites @ Test_mem.extra_suites @ Test_branch.suites @ Test_power.suites @ Test_ooo.suites
   @ Test_core.suites @ Test_core.extra_suites @ Test_core.gating_suites
   @ Test_core.misc_suites @ Test_loopir.suites
   @ Test_loopir.unroll_suites @ Test_loopir.interchange_suites @ Test_workloads.suites @ Test_workloads.extra_suites
   @ Test_differential.suites @ Test_asm_fuzz.suites @ Test_harness.suites @ Test_analysis.suites @ Test_dataflow.suites
   @ Test_exp.suites @ Test_obs.suites @ Test_metrics.suites @ Test_fuzz.suites @ Test_fastpath.suites @ Test_skipahead.suites
   @ Test_svc.suites)
