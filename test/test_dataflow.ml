(* Tests for the generic dataflow framework and its clients (reaching
   definitions, value ranges, store-load alias analysis), plus the
   soundness properties the ISSUE pins down:

   - solver properties on random CFGs from the fuzz generator: the
     fixpoint is stable (re-solving changes nothing) and a Backward
     solve equals a Forward solve of the reversed graph;
   - a non-monotone transfer function is detected, not silently
     "solved";
   - on every built-in kernel, the statically predicted revoke cause
     matches the dominant cause the core actually counted (on loops
     whose prediction is not Marginal), and no no-alias claim is
     contradicted by the addresses the reference interpreter observes. *)

open Riq_asm
open Riq_isa
open Riq_core
open Riq_workloads
open Riq_analysis

let parse = Parse.program_exn
let cfg_of src = Cfg.build (parse src)

(* ---- solver properties on random CFGs ---- *)

module IS = Set.Make (Int)

module L = struct
  type fact = IS.t

  let name = "reach-set"
  let bottom = IS.empty
  let equal = IS.equal
  let join = IS.union
  let widen = IS.union
end

module Solver = Dataflow.Make (L)

let transfer n input = IS.add n input

let random_graphs =
  lazy
    (List.filter_map
       (fun i ->
         let prog = Riq_fuzz.Gen.program ~seed:(Riq_fuzz.Gen.derive_seed 99 i) () in
         match Riq_fuzz.Prog.to_program prog with
         | Ok p -> Some (Dataflow.of_cfg (Cfg.build p))
         | Error _ -> None)
       (List.init 20 Fun.id))

let test_fixpoint_stable () =
  List.iteri
    (fun i g ->
      let r = Solver.solve ~transfer g in
      Alcotest.(check bool)
        (Printf.sprintf "forward fixpoint stable (graph %d)" i)
        true
        (Solver.stable ~transfer g r);
      let rb = Solver.solve ~direction:Dataflow.Backward ~transfer g in
      Alcotest.(check bool)
        (Printf.sprintf "backward fixpoint stable (graph %d)" i)
        true
        (Solver.stable ~direction:Dataflow.Backward ~transfer g rb))
    (Lazy.force random_graphs)

let test_direction_symmetry () =
  List.iteri
    (fun i g ->
      let bwd = Solver.solve ~direction:Dataflow.Backward ~transfer g in
      let fwd_rev = Solver.solve ~transfer (Dataflow.reverse g) in
      Array.iteri
        (fun n f ->
          Alcotest.(check bool)
            (Printf.sprintf "input facts agree (graph %d, node %d)" i n)
            true
            (IS.equal f fwd_rev.Solver.input.(n)))
        bwd.Solver.input;
      Array.iteri
        (fun n f ->
          Alcotest.(check bool)
            (Printf.sprintf "output facts agree (graph %d, node %d)" i n)
            true
            (IS.equal f fwd_rev.Solver.output.(n)))
        bwd.Solver.output)
    (Lazy.force random_graphs)

let test_non_monotone_detected () =
  (* Entry feeds a self-loop whose transfer erases the very mark it adds:
     the second visit computes an output strictly below the first, which
     must raise, not converge by accident of visit order. *)
  let g =
    {
      Dataflow.g_nodes = 2;
      g_entry = 0;
      g_succs = [| [ 1 ]; [ 1 ] |];
      g_preds = [| []; [ 0; 1 ] |];
      g_order = [| 0; 1 |];
    }
  in
  let shrinking n input =
    if n = 1 then (if IS.mem 99 input then IS.empty else IS.singleton 99)
    else input
  in
  Alcotest.check_raises "non-monotone transfer raises"
    (Dataflow.Non_monotone { lattice = "reach-set"; node = 1 })
    (fun () -> ignore (Solver.solve ~transfer:shrinking g))

(* ---- value-range propagation ---- *)

let pc_of p label = Option.get (Program.address_of p label)

let test_valrange_constants () =
  let src =
    {|
start:
    addi r2, r0, 10
    addi r3, r2, 5
    sll  r4, r3, 2
q:
    halt
|}
  in
  let p = parse src in
  let v = Valrange.analyze (Cfg.build p) in
  let at label r = Valrange.value_at v ~pc:(pc_of p label) (Reg.r r) in
  Alcotest.(check bool) "not tainted" false (Valrange.tainted v);
  Alcotest.(check (option int)) "r3 = 15" (Some 15) (Valrange.const (at "q" 3));
  Alcotest.(check (option int)) "r4 = 60" (Some 60) (Valrange.const (at "q" 4))

let test_valrange_join_and_call () =
  let src =
    {|
start:
    addi r2, r0, 7
    beq  r2, r0, else_
    addi r3, r0, 1
    j    join
else_:
    addi r3, r0, 2
join:
    add  r4, r3, r0
    jal  proc
after:
    halt
proc:
    addi r5, r0, 3
    jr   r31
|}
  in
  let p = parse src in
  let v = Valrange.analyze (Cfg.build p) in
  Alcotest.(check bool) "not tainted" false (Valrange.tainted v);
  (match Valrange.value_at v ~pc:(pc_of p "join") (Reg.r 3) with
  | Valrange.Range (1, 2) -> ()
  | other -> Alcotest.failf "r3 at join: expected [1,2], got %s" (Valrange.to_string other));
  (* The call havocs everything: the constant r2 held before [jal] is
     gone at the return point. *)
  (match Valrange.value_at v ~pc:(pc_of p "after") (Reg.r 2) with
  | Valrange.Top -> ()
  | other -> Alcotest.failf "r2 after call: expected Top, got %s" (Valrange.to_string other))

let test_valrange_tainted_by_jalr () =
  let src =
    {|
start:
    addi r2, r0, 5
    la   r8, start
    jalr r31, r8
q:
    halt
|}
  in
  let p = parse src in
  let v = Valrange.analyze (Cfg.build p) in
  Alcotest.(check bool) "tainted" true (Valrange.tainted v);
  (match Valrange.value_at v ~pc:(pc_of p "q") (Reg.r 2) with
  | Valrange.Top -> ()
  | other -> Alcotest.failf "tainted query: expected Top, got %s" (Valrange.to_string other))

(* ---- reaching definitions ---- *)

let test_reaching_defs () =
  let src =
    {|
start:
    addi r2, r0, 1
    addi r2, r2, 1
q:
    halt
|}
  in
  let p = parse src in
  let r = Reaching.analyze (Cfg.build p) in
  Alcotest.(check (list int)) "second def shadows the first"
    [ pc_of p "start" + 4 ]
    (Reaching.defs_of r ~pc:(pc_of p "q") (Reg.r 2));
  Alcotest.(check (list int)) "unwritten register keeps its initial def"
    [ Reaching.entry_pc ]
    (Reaching.defs_of r ~pc:(pc_of p "q") (Reg.r 9))

(* ---- alias analysis, through the bufferability report ---- *)

let loop_report src =
  let report = Bufferability.analyze ~iq_size:32 (parse src) in
  match report.Bufferability.loops with
  | [ l ] -> (report, l)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let disjoint_src =
  (* Pointer-bump idiom: both bases are inductions with constant entry
     values and an exact trip count, so the analysis lowers each to the
     concrete interval it sweeps — provably disjoint arrays. *)
  {|
.space a 64
.space b 64
start:
    la   r8, a
    la   r9, b
    addi r16, r0, 16
loop:
    lw   r5, 0(r9)
    sw   r5, 0(r8)
    addi r8, r8, 4
    addi r9, r9, 4
    addi r16, r16, -1
    bgtz r16, loop
    halt
|}

let test_alias_disjoint_arrays () =
  let _, l = loop_report disjoint_src in
  Alcotest.(check bool) "no-alias claim exported" true (l.Bufferability.no_alias <> []);
  Alcotest.(check bool) "no aliasing-store risk" true
    (not
       (List.exists
          (function Bufferability.Aliasing_store _ -> true | _ -> false)
          l.Bufferability.risks))

let test_alias_same_address_flagged () =
  let src =
    {|
.space a 64
start:
    la   r8, a
    addi r16, r0, 0
loop:
    lw   r5, 0(r8)
    addi r5, r5, 1
    sw   r5, 0(r8)
    addi r16, r16, 1
    slti r2, r16, 16
    bne  r2, r0, loop
    halt
|}
  in
  let _, l = loop_report src in
  Alcotest.(check bool) "aliasing store flagged" true
    (List.exists
       (function Bufferability.Aliasing_store _ -> true | _ -> false)
       l.Bufferability.risks)

let test_alias_claims_validated () =
  let p = parse disjoint_src in
  let report = Bufferability.analyze ~iq_size:32 p in
  match Bufferability.validate_no_alias p report with
  | Ok n -> Alcotest.(check bool) "claims checked" true (n > 0)
  | Error msg -> Alcotest.failf "claim contradicted: %s" msg

(* ---- unreachable code ---- *)

let test_unreachable_reported () =
  let src =
    {|
start:
    addi r2, r0, 1
    j    out
dead:
    addi r3, r0, 2
    addi r3, r3, 1
out:
    halt
|}
  in
  let p = parse src in
  let report = Bufferability.analyze ~iq_size:32 p in
  match report.Bufferability.unreachable with
  | [ (first, last) ] ->
      Alcotest.(check int) "range starts at dead" (pc_of p "dead") first;
      Alcotest.(check int) "range spans both insns" (pc_of p "dead" + 4) last
  | other -> Alcotest.failf "expected one unreachable range, got %d" (List.length other)

(* ---- kernels: predicted vs measured revoke causes, claims validated ---- *)

let dominant_cause (d : Processor.loop_decision) =
  List.fold_left
    (fun acc (c, n) ->
      match acc with Some (_, m) when m >= n -> acc | _ -> if n > 0 then Some (c, n) else acc)
    None
    [
      (Bufferability.Rv_inner_loop, d.Processor.ld_rv_inner);
      (Bufferability.Rv_left_loop, d.Processor.ld_rv_left);
      (Bufferability.Rv_overflow, d.Processor.ld_rv_overflow);
      (Bufferability.Rv_mispredict, d.Processor.ld_rv_mispredict);
    ]

let test_kernel_revoke_causes () =
  List.iter
    (fun w ->
      let program = Workloads.program w in
      let cfg = Riq_ooo.Config.with_iq_size Riq_ooo.Config.reuse 32 in
      let report = Bufferability.analyze_config cfg program in
      (match Bufferability.validate_no_alias program report with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: no-alias claim contradicted: %s" w.Workloads.name msg);
      let p = Processor.create cfg program in
      (match Processor.run p with
      | Processor.Halted -> ()
      | Processor.Cycle_limit -> Alcotest.failf "%s: cycle limit" w.Workloads.name);
      List.iter
        (fun (d : Processor.loop_decision) ->
          match
            List.find_opt
              (fun l -> l.Bufferability.tail = d.Processor.ld_tail)
              report.Bufferability.loops
          with
          | None -> ()
          | Some l -> (
              match (l.Bufferability.predicted_cause, dominant_cause d) with
              | Some c, Some (dc, _) when l.Bufferability.prediction <> Bufferability.Marginal
                ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s loop %08x: predicted cause" w.Workloads.name
                       d.Processor.ld_tail)
                    (Bufferability.cause_to_string c)
                    (Bufferability.cause_to_string dc)
              | _ -> ()))
        (Processor.loop_decisions p))
    Workloads.all

let suites =
  [
    ( "dataflow.solver",
      [
        Alcotest.test_case "fixpoint stable on random CFGs" `Quick test_fixpoint_stable;
        Alcotest.test_case "backward = forward on reversed graph" `Quick
          test_direction_symmetry;
        Alcotest.test_case "non-monotone transfer detected" `Quick
          test_non_monotone_detected;
      ] );
    ( "dataflow.valrange",
      [
        Alcotest.test_case "constants fold" `Quick test_valrange_constants;
        Alcotest.test_case "join and call havoc" `Quick test_valrange_join_and_call;
        Alcotest.test_case "jalr taints" `Quick test_valrange_tainted_by_jalr;
      ] );
    ( "dataflow.reaching",
      [ Alcotest.test_case "kills and initial defs" `Quick test_reaching_defs ] );
    ( "dataflow.alias",
      [
        Alcotest.test_case "disjoint arrays proven" `Quick test_alias_disjoint_arrays;
        Alcotest.test_case "same-address store flagged" `Quick
          test_alias_same_address_flagged;
        Alcotest.test_case "claims validated dynamically" `Quick
          test_alias_claims_validated;
      ] );
    ( "dataflow.unreachable",
      [ Alcotest.test_case "dead block reported" `Quick test_unreachable_reported ] );
    ( "dataflow.kernels",
      [
        Alcotest.test_case "revoke causes and claims on all kernels" `Quick
          test_kernel_revoke_causes;
      ] );
  ]
