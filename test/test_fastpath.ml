open Riq_ooo
open Riq_core
open Riq_workloads
open Riq_fuzz

(* Differential suite for the packed fast path: every fixed-corpus program
   and every kernel runs through both [Slowpath] (the seed-equivalent
   reference pipeline, Insn.t matches + Queue/Hashtbl structures) and
   [Processor] (the flat-array packed core) inside this binary, asserting
   bit-equal architectural state, equal stat counters (including the
   power average down to the float bits) and equal per-loop decision
   logs. Any divergence in charge ordering, event drain order or decode
   behavior shows up here before it can skew a figure. *)

let base_seed = 42
let corpus_size = 50

let corpus =
  lazy
    (List.init corpus_size (fun i ->
         let prog = Gen.program ~seed:(Gen.derive_seed base_seed i) () in
         match Prog.to_program prog with
         | Ok p -> (Printf.sprintf "seed-%d" prog.Prog.seed, p)
         | Error msg ->
             Alcotest.failf "corpus program (seed %d) does not assemble: %s"
               prog.Prog.seed msg))

let configs = [ ("baseline", Config.baseline); ("reuse", Config.reuse) ]

let check_stats name (slow : Processor.stats) (fast : Processor.stats) =
  let chk_i what a b = Alcotest.(check int) (name ^ ": " ^ what) a b in
  chk_i "cycles" slow.Processor.cycles fast.Processor.cycles;
  chk_i "committed" slow.Processor.committed fast.Processor.committed;
  chk_i "gated_cycles" slow.Processor.gated_cycles fast.Processor.gated_cycles;
  chk_i "branches" slow.Processor.branches fast.Processor.branches;
  chk_i "mispredicts" slow.Processor.mispredicts fast.Processor.mispredicts;
  chk_i "loads" slow.Processor.loads fast.Processor.loads;
  chk_i "stores" slow.Processor.stores fast.Processor.stores;
  chk_i "reuse_dispatches" slow.Processor.reuse_dispatches
    fast.Processor.reuse_dispatches;
  chk_i "reuse_committed" slow.Processor.reuse_committed
    fast.Processor.reuse_committed;
  chk_i "buffer_attempts" slow.Processor.buffer_attempts
    fast.Processor.buffer_attempts;
  chk_i "revokes" slow.Processor.revokes fast.Processor.revokes;
  chk_i "promotions" slow.Processor.promotions fast.Processor.promotions;
  chk_i "reuse_exits" slow.Processor.reuse_exits fast.Processor.reuse_exits;
  chk_i "icache_accesses" slow.Processor.icache_accesses
    fast.Processor.icache_accesses;
  chk_i "icache_misses" slow.Processor.icache_misses fast.Processor.icache_misses;
  chk_i "dcache_accesses" slow.Processor.dcache_accesses
    fast.Processor.dcache_accesses;
  chk_i "dcache_misses" slow.Processor.dcache_misses fast.Processor.dcache_misses;
  (* Power must agree to the bit: the fast path is required to issue every
     charge in the seed order. *)
  Alcotest.(check int64)
    (name ^ ": avg_power bits")
    (Int64.bits_of_float slow.Processor.avg_power)
    (Int64.bits_of_float fast.Processor.avg_power);
  Alcotest.(check (float 1e-12)) (name ^ ": ipc") slow.Processor.ipc
    fast.Processor.ipc

let check_decisions name slow fast =
  let pp (d : Processor.loop_decision) =
    Printf.sprintf
      "{head=%#x tail=%#x span=%d det=%d filt=%d att=%d rev=%d \
       inner=%d left=%d ovf=%d misp=%d reg=%d prom=%d reused=%d}"
      d.Processor.ld_head d.Processor.ld_tail d.Processor.ld_span
      d.Processor.ld_detections d.Processor.ld_nblt_filtered
      d.Processor.ld_attempts d.Processor.ld_revokes d.Processor.ld_rv_inner
      d.Processor.ld_rv_left d.Processor.ld_rv_overflow
      d.Processor.ld_rv_mispredict d.Processor.ld_nblt_registered
      d.Processor.ld_promotions d.Processor.ld_reuse_committed
  in
  let show l = String.concat "; " (List.map pp l) in
  if slow <> fast then
    Alcotest.failf "%s: loop_decisions diverge\nslow: %s\nfast: %s" name
      (show slow) (show fast)

let run_both name program cfg =
  let slow = Slowpath.create cfg program in
  (match Slowpath.run slow with
  | Slowpath.Halted -> ()
  | Slowpath.Cycle_limit -> Alcotest.failf "%s: slow path hit cycle limit" name);
  let fast = Processor.create cfg program in
  (match Processor.run fast with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> Alcotest.failf "%s: fast path hit cycle limit" name);
  let a_slow = Slowpath.arch_state slow and a_fast = Processor.arch_state fast in
  if not (Riq_interp.Machine.equal_arch a_slow a_fast) then
    Alcotest.failf "%s: arch state diverges\n%s" name
      (Riq_interp.Machine.diff_string a_slow a_fast);
  check_stats name (Slowpath.stats slow) (Processor.stats fast);
  check_decisions name (Slowpath.loop_decisions slow) (Processor.loop_decisions fast)

let test_kernels () =
  List.iter
    (fun w ->
      List.iter
        (fun (cname, cfg) ->
          run_both (w.Workloads.name ^ "/" ^ cname) (Workloads.program w) cfg)
        configs)
    Workloads.all

let test_corpus () =
  List.iter
    (fun (pname, program) ->
      List.iter
        (fun (cname, cfg) -> run_both (pname ^ "/" ^ cname) program cfg)
        configs)
    (Lazy.force corpus)

(* A constrained machine shakes out the structural-stall and revoke paths
   (IQ overflow while buffering, LSQ-full dispatch stalls, event-wheel
   wrap) that the default geometry rarely exercises. *)
let test_small_iq () =
  let cfg = Config.with_iq_size Config.reuse 16 in
  List.iter
    (fun w -> run_both (w.Workloads.name ^ "/small-iq") (Workloads.program w) cfg)
    Workloads.all

(* The interpreter has the same split: [Machine.run] executes packed
   words, [Machine.step] matches constructors. Every kernel and corpus
   program must reach the same architectural state through both. *)
let interp_both name program =
  let module M = Riq_interp.Machine in
  let fast = M.create program in
  (match M.run fast with
  | M.Halted -> ()
  | M.Insn_limit -> Alcotest.failf "%s: packed interp hit insn limit" name
  | M.Bad_pc pc -> Alcotest.failf "%s: packed interp bad pc %#x" name pc);
  let slow = M.create program in
  let rec step_all () =
    match M.step slow with
    | None -> step_all ()
    | Some M.Halted -> ()
    | Some M.Insn_limit -> Alcotest.failf "%s: step interp hit insn limit" name
    | Some (M.Bad_pc pc) -> Alcotest.failf "%s: step interp bad pc %#x" name pc
  in
  step_all ();
  let a_fast = M.arch_state fast and a_slow = M.arch_state slow in
  if not (M.equal_arch a_slow a_fast) then
    Alcotest.failf "%s: interp packed/step state diverges\n%s" name
      (M.diff_string a_slow a_fast)

let test_interp_packed () =
  List.iter
    (fun w -> interp_both w.Workloads.name (Workloads.program w))
    Workloads.all;
  List.iter (fun (pname, program) -> interp_both pname program) (Lazy.force corpus)

let suites =
  [
    ( "fastpath.differential",
      [
        Alcotest.test_case "kernels: slow = fast (arch, stats, decisions)" `Slow
          test_kernels;
        Alcotest.test_case "fuzz corpus x 2 configs: slow = fast" `Slow
          test_corpus;
        Alcotest.test_case "small-iq kernels: slow = fast" `Slow test_small_iq;
        Alcotest.test_case "interpreter: packed run = step loop" `Quick
          test_interp_packed;
      ] );
  ]
