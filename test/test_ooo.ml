open Riq_isa
open Riq_ooo

(* ---- Config ---- *)

let test_config_scaling () =
  let c = Config.with_iq_size Config.baseline 128 in
  Alcotest.(check int) "iq" 128 c.Config.iq_entries;
  Alcotest.(check int) "rob" 128 c.Config.rob_entries;
  Alcotest.(check int) "lsq" 64 c.Config.lsq_entries;
  Config.validate c;
  Alcotest.(check bool) "reuse flag" true Config.reuse.Config.reuse_enabled;
  Alcotest.(check bool) "baseline flag" false Config.baseline.Config.reuse_enabled

let test_config_validation () =
  Alcotest.(check bool) "rob < iq rejected" true
    (try
       Config.validate { Config.baseline with Config.rob_entries = 8 };
       false
     with Invalid_argument _ -> true)

(* ---- Rob ---- *)

let fill_entry rob ~seq ~dest =
  let idx = Rob.alloc rob in
  let e = Rob.entry rob idx in
  e.Rob.seq <- seq;
  e.Rob.dest <- dest;
  e.Rob.completed <- false;
  idx

let test_rob_fifo () =
  let rob = Rob.create 4 in
  Alcotest.(check bool) "empty" true (Rob.is_empty rob);
  let i1 = fill_entry rob ~seq:1 ~dest:3 in
  let _ = fill_entry rob ~seq:2 ~dest:4 in
  Alcotest.(check int) "count" 2 (Rob.count rob);
  Alcotest.(check int) "head" i1 (Rob.head rob);
  Rob.pop_head rob;
  Alcotest.(check int) "after pop" 1 (Rob.count rob)

let test_rob_full () =
  let rob = Rob.create 2 in
  ignore (fill_entry rob ~seq:1 ~dest:(-1));
  ignore (fill_entry rob ~seq:2 ~dest:(-1));
  Alcotest.(check bool) "full" true (Rob.is_full rob);
  Alcotest.(check bool) "alloc raises" true
    (try
       ignore (Rob.alloc rob);
       false
     with Failure _ -> true)

let test_rob_wraparound () =
  let rob = Rob.create 3 in
  for k = 1 to 10 do
    let idx = fill_entry rob ~seq:k ~dest:(-1) in
    Alcotest.(check int) "seq stored" k (Rob.entry rob idx).Rob.seq;
    Rob.pop_head rob
  done;
  Alcotest.(check bool) "empty after" true (Rob.is_empty rob)

let test_rob_squash () =
  let rob = Rob.create 8 in
  ignore (fill_entry rob ~seq:1 ~dest:1);
  ignore (fill_entry rob ~seq:2 ~dest:2);
  ignore (fill_entry rob ~seq:3 ~dest:3);
  ignore (fill_entry rob ~seq:4 ~dest:4);
  let squashed = ref [] in
  Rob.squash_after rob ~seq:2 ~f:(fun _ e -> squashed := e.Rob.seq :: !squashed);
  Alcotest.(check (list int)) "youngest first order" [ 3; 4 ] !squashed;
  Alcotest.(check int) "survivors" 2 (Rob.count rob);
  (* tail reuse after squash *)
  let idx = fill_entry rob ~seq:5 ~dest:5 in
  Alcotest.(check int) "realloc" 5 (Rob.entry rob idx).Rob.seq

let test_rob_iteration () =
  let rob = Rob.create 4 in
  ignore (fill_entry rob ~seq:1 ~dest:(-1));
  ignore (fill_entry rob ~seq:2 ~dest:(-1));
  ignore (fill_entry rob ~seq:3 ~dest:(-1));
  let oldest = ref [] in
  Rob.iter_oldest_first rob (fun _ e -> oldest := e.Rob.seq :: !oldest);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (List.rev !oldest);
  let youngest = ref [] in
  Rob.iter_youngest_first rob (fun _ e -> youngest := e.Rob.seq :: !youngest);
  Alcotest.(check (list int)) "youngest first" [ 3; 2; 1 ] (List.rev !youngest)

(* ---- Iq ---- *)

let dispatch_simple iq ~seq ~reusable ~ready =
  let s = Iq.dispatch iq in
  s.Iq.seq <- seq;
  s.Iq.wi <- -1;
  s.Iq.src1_tag <- (if ready then -1 else seq + 100);
  s.Iq.src2_tag <- -1;
  s.Iq.reusable <- reusable;
  s.Iq.pred_npc <- 0;
  Iq.enqueue iq s;
  s

let test_iq_dispatch_compact () =
  let iq = Iq.create 4 in
  let s1 = dispatch_simple iq ~seq:1 ~reusable:false ~ready:true in
  let _s2 = dispatch_simple iq ~seq:2 ~reusable:false ~ready:true in
  Alcotest.(check int) "count" 2 (Iq.count iq);
  Iq.kill iq s1;
  let removed = Iq.compact iq in
  Alcotest.(check int) "removed" 1 removed;
  Alcotest.(check int) "count after" 1 (Iq.count iq);
  Alcotest.(check int) "survivor shifted" 2 (Iq.slots iq).(0).Iq.seq

let test_iq_wakeup () =
  let iq = Iq.create 4 in
  (* dispatch_simple with ~ready:false leaves the slot waiting on tag
     [seq + 100]; tags must be final before enqueue links the slot. *)
  let s = dispatch_simple iq ~seq:1 ~reusable:false ~ready:false in
  Iq.wakeup iq ~tag:101 ~value_i:42 ~value_f:1.5;
  Alcotest.(check int) "tag cleared" (-1) s.Iq.src1_tag;
  Alcotest.(check int) "value captured" 42 s.Iq.src1_i;
  (* issued entries are unlinked and are not woken *)
  let s2 = dispatch_simple iq ~seq:2 ~reusable:true ~ready:false in
  Iq.mark_issued iq s2;
  Iq.wakeup iq ~tag:102 ~value_i:1 ~value_f:0.;
  Alcotest.(check int) "issued untouched" 102 s2.Iq.src1_tag

let test_iq_classification () =
  let iq = Iq.create 8 in
  let s1 = dispatch_simple iq ~seq:1 ~reusable:true ~ready:true in
  Iq.mark_issued iq s1;
  let s2 = dispatch_simple iq ~seq:2 ~reusable:true ~ready:true in
  s2.Iq.issued <- false;
  Iq.clear_classification iq;
  Alcotest.(check bool) "issued reusable dies" true s1.Iq.dead;
  Alcotest.(check bool) "live instance survives" false s2.Iq.dead;
  Alcotest.(check bool) "classification cleared" false s2.Iq.reusable

let test_iq_squash () =
  let iq = Iq.create 8 in
  let s1 = dispatch_simple iq ~seq:1 ~reusable:false ~ready:true in
  let s2 = dispatch_simple iq ~seq:5 ~reusable:false ~ready:true in
  let s3 = dispatch_simple iq ~seq:6 ~reusable:true ~ready:true in
  s3.Iq.issued <- false;
  Iq.squash_after iq ~seq:4;
  Alcotest.(check bool) "older survives" false s1.Iq.dead;
  Alcotest.(check bool) "younger conventional dies" true s2.Iq.dead;
  Alcotest.(check bool) "younger reusable kept" false s3.Iq.dead;
  Alcotest.(check bool) "reusable reset to issued" true s3.Iq.issued

let test_iq_reuse_ptr_compact () =
  let iq = Iq.create 8 in
  let s1 = dispatch_simple iq ~seq:1 ~reusable:false ~ready:true in
  let _s2 = dispatch_simple iq ~seq:2 ~reusable:true ~ready:true in
  let _s3 = dispatch_simple iq ~seq:3 ~reusable:true ~ready:true in
  Iq.set_reuse_ptr iq 2;
  Iq.kill iq s1;
  ignore (Iq.compact iq);
  (* the pointer must still reference the same slot (now index 1) *)
  Alcotest.(check int) "pointer adjusted" 1 (Iq.reuse_ptr iq);
  Alcotest.(check int) "points at seq 3" 3 (Iq.slots iq).(Iq.reuse_ptr iq).Iq.seq

let test_iq_first_reusable () =
  let iq = Iq.create 8 in
  ignore (dispatch_simple iq ~seq:1 ~reusable:false ~ready:true);
  Alcotest.(check int) "none" (-1) (Iq.first_reusable iq);
  ignore (dispatch_simple iq ~seq:2 ~reusable:true ~ready:true);
  Alcotest.(check int) "found" 1 (Iq.first_reusable iq)

let test_iq_full () =
  let iq = Iq.create 2 in
  ignore (dispatch_simple iq ~seq:1 ~reusable:false ~ready:true);
  ignore (dispatch_simple iq ~seq:2 ~reusable:false ~ready:true);
  Alcotest.(check bool) "full" true (Iq.is_full iq);
  Alcotest.(check int) "free" 0 (Iq.free iq)

(* ---- Lsq ---- *)

let alloc_mem lsq ~seq ~store =
  let idx = Lsq.alloc lsq in
  let e = Lsq.entry lsq idx in
  e.Lsq.seq <- seq;
  e.Lsq.is_store <- store;
  (idx, e)

let test_lsq_forwarding () =
  let lsq = Lsq.create 8 in
  let _, st = alloc_mem lsq ~seq:1 ~store:true in
  let li, _ = alloc_mem lsq ~seq:2 ~store:false in
  (* store address unknown: load must wait *)
  Alcotest.(check bool) "wait on unknown" true (Lsq.check_load lsq ~idx:li ~addr:0x100 ~width:4 = Lsq.Wait);
  st.Lsq.addr_ready <- true;
  st.Lsq.addr <- 0x200;
  Alcotest.(check bool) "no conflict" true (Lsq.check_load lsq ~idx:li ~addr:0x100 ~width:4 = Lsq.Access);
  st.Lsq.addr <- 0x100;
  Alcotest.(check bool) "match no data" true (Lsq.check_load lsq ~idx:li ~addr:0x100 ~width:4 = Lsq.Wait);
  st.Lsq.data_ready <- true;
  st.Lsq.data_i <- 77;
  (match Lsq.check_load lsq ~idx:li ~addr:0x100 ~width:4 with
  | Lsq.Forward e -> Alcotest.(check int) "forwarded value" 77 e.Lsq.data_i
  | Lsq.Wait | Lsq.Access -> Alcotest.fail "expected forward")

let test_lsq_youngest_older_store_wins () =
  let lsq = Lsq.create 8 in
  let _, st1 = alloc_mem lsq ~seq:1 ~store:true in
  let _, st2 = alloc_mem lsq ~seq:2 ~store:true in
  let li, _ = alloc_mem lsq ~seq:3 ~store:false in
  st1.Lsq.addr_ready <- true;
  st1.Lsq.addr <- 0x40;
  st1.Lsq.data_ready <- true;
  st1.Lsq.data_i <- 1;
  st2.Lsq.addr_ready <- true;
  st2.Lsq.addr <- 0x40;
  st2.Lsq.data_ready <- true;
  st2.Lsq.data_i <- 2;
  match Lsq.check_load lsq ~idx:li ~addr:0x40 ~width:4 with
  | Lsq.Forward e -> Alcotest.(check int) "youngest older" 2 e.Lsq.data_i
  | Lsq.Wait | Lsq.Access -> Alcotest.fail "expected forward"

let test_lsq_squash_and_pop () =
  let lsq = Lsq.create 4 in
  let i1, _ = alloc_mem lsq ~seq:1 ~store:true in
  let _ = alloc_mem lsq ~seq:2 ~store:false in
  Lsq.squash_after lsq ~seq:1;
  Alcotest.(check int) "count" 1 (Lsq.count lsq);
  Alcotest.(check bool) "head is store" true (Lsq.head_is lsq i1);
  Lsq.pop_head lsq;
  Alcotest.(check int) "empty" 0 (Lsq.count lsq)

let test_lsq_capture_data () =
  let lsq = Lsq.create 4 in
  let _, st = alloc_mem lsq ~seq:1 ~store:true in
  st.Lsq.rob_idx <- 9;
  Lsq.wait_data lsq st ~tag:5;
  let captured = Lsq.capture_data lsq ~tag:5 ~value_i:33 ~value_f:0. in
  Alcotest.(check (list (pair int int))) "captured" [ (9, 1) ] captured;
  Alcotest.(check bool) "ready" true st.Lsq.data_ready;
  Alcotest.(check int) "value" 33 st.Lsq.data_i;
  Alcotest.(check (list (pair int int))) "no double capture" []
    (Lsq.capture_data lsq ~tag:5 ~value_i:0 ~value_f:0.)

let test_lsq_partial_overlap () =
  let lsq = Lsq.create 8 in
  let _, st = alloc_mem lsq ~seq:1 ~store:true in
  let li, _ = alloc_mem lsq ~seq:2 ~store:false in
  st.Lsq.addr_ready <- true;
  st.Lsq.addr <- 0x100;
  st.Lsq.width <- 1;
  st.Lsq.data_ready <- true;
  st.Lsq.data_i <- 0xAB;
  (* word load overlapping a byte store: no forwarding, must wait *)
  Alcotest.(check bool) "overlap waits" true
    (Lsq.check_load lsq ~idx:li ~addr:0x100 ~width:4 = Lsq.Wait);
  (* byte load of the exact byte: forwards *)
  (match Lsq.check_load lsq ~idx:li ~addr:0x100 ~width:1 with
  | Lsq.Forward e -> Alcotest.(check int) "byte forward" 0xAB e.Lsq.data_i
  | Lsq.Wait | Lsq.Access -> Alcotest.fail "expected forward");
  (* disjoint byte: clear *)
  Alcotest.(check bool) "disjoint byte" true
    (Lsq.check_load lsq ~idx:li ~addr:0x104 ~width:1 = Lsq.Access)

let test_lsq_load_at_head () =
  let lsq = Lsq.create 4 in
  let li, _ = alloc_mem lsq ~seq:1 ~store:false in
  Alcotest.(check bool) "no older stores" true (Lsq.check_load lsq ~idx:li ~addr:0 ~width:4 = Lsq.Access)

(* ---- Fu ---- *)

let test_fu_pool () =
  let fu = Fu.create ~n_ialu:2 ~n_imult:1 ~n_fpalu:1 ~n_fpmult:1 ~n_memport:1 in
  Alcotest.(check bool) "first" true (Fu.acquire fu Insn.FU_ialu ~now:0 ~latency:1 ~pipelined:true);
  Alcotest.(check bool) "second" true (Fu.acquire fu Insn.FU_ialu ~now:0 ~latency:1 ~pipelined:true);
  Alcotest.(check bool) "third denied" false
    (Fu.acquire fu Insn.FU_ialu ~now:0 ~latency:1 ~pipelined:true);
  Alcotest.(check bool) "next cycle ok" true
    (Fu.acquire fu Insn.FU_ialu ~now:1 ~latency:1 ~pipelined:true);
  Alcotest.(check int) "issued count" 3 (Fu.issued_of fu Insn.FU_ialu)

let test_fu_unpipelined () =
  let fu = Fu.create ~n_ialu:1 ~n_imult:1 ~n_fpalu:1 ~n_fpmult:1 ~n_memport:1 in
  Alcotest.(check bool) "div starts" true
    (Fu.acquire fu Insn.FU_imult ~now:0 ~latency:20 ~pipelined:false);
  Alcotest.(check bool) "busy at 10" false
    (Fu.acquire fu Insn.FU_imult ~now:10 ~latency:20 ~pipelined:false);
  Alcotest.(check bool) "free at 20" true
    (Fu.acquire fu Insn.FU_imult ~now:20 ~latency:20 ~pipelined:false)

let test_fu_none_always () =
  let fu = Fu.create ~n_ialu:1 ~n_imult:1 ~n_fpalu:1 ~n_fpmult:1 ~n_memport:1 in
  for _ = 1 to 10 do
    Alcotest.(check bool) "nop free" true
      (Fu.acquire fu Insn.FU_none ~now:0 ~latency:1 ~pipelined:true)
  done

(* qcheck: compact preserves relative order of survivors *)
let prop_iq_compact_order =
  QCheck.Test.make ~name:"compact preserves survivor order" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 16) bool)
    (fun kills ->
      let iq = Iq.create 16 in
      List.iteri
        (fun i kill ->
          let s = dispatch_simple iq ~seq:(i + 1) ~reusable:false ~ready:true in
          if kill then Iq.kill iq s)
        kills;
      ignore (Iq.compact iq);
      let seqs = List.init (Iq.count iq) (fun i -> (Iq.slots iq).(i).Iq.seq) in
      List.sort compare seqs = seqs
      && List.length seqs = List.length (List.filter not kills))

let suites =
  [
    ( "ooo",
      [
        Alcotest.test_case "config scaling" `Quick test_config_scaling;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "rob fifo" `Quick test_rob_fifo;
        Alcotest.test_case "rob full" `Quick test_rob_full;
        Alcotest.test_case "rob wraparound" `Quick test_rob_wraparound;
        Alcotest.test_case "rob squash" `Quick test_rob_squash;
        Alcotest.test_case "rob iteration" `Quick test_rob_iteration;
        Alcotest.test_case "iq dispatch/compact" `Quick test_iq_dispatch_compact;
        Alcotest.test_case "iq wakeup" `Quick test_iq_wakeup;
        Alcotest.test_case "iq classification" `Quick test_iq_classification;
        Alcotest.test_case "iq squash semantics" `Quick test_iq_squash;
        Alcotest.test_case "iq reuse pointer under compact" `Quick test_iq_reuse_ptr_compact;
        Alcotest.test_case "iq first reusable" `Quick test_iq_first_reusable;
        Alcotest.test_case "iq full" `Quick test_iq_full;
        Alcotest.test_case "lsq forwarding" `Quick test_lsq_forwarding;
        Alcotest.test_case "lsq youngest older store" `Quick test_lsq_youngest_older_store_wins;
        Alcotest.test_case "lsq squash/pop" `Quick test_lsq_squash_and_pop;
        Alcotest.test_case "lsq capture data" `Quick test_lsq_capture_data;
        Alcotest.test_case "lsq partial overlap" `Quick test_lsq_partial_overlap;
        Alcotest.test_case "lsq load at head" `Quick test_lsq_load_at_head;
        Alcotest.test_case "fu pool" `Quick test_fu_pool;
        Alcotest.test_case "fu unpipelined" `Quick test_fu_unpipelined;
        Alcotest.test_case "fu none" `Quick test_fu_none_always;
        QCheck_alcotest.to_alcotest prop_iq_compact_order;
      ] );
  ]
