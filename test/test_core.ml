open Riq_isa
open Riq_asm
open Riq_interp
open Riq_ooo
open Riq_core

(* ---- Nblt ---- *)

let test_nblt_basic () =
  let n = Nblt.create 4 in
  Alcotest.(check bool) "empty" false (Nblt.mem n 0x100);
  Nblt.insert n 0x100;
  Alcotest.(check bool) "present" true (Nblt.mem n 0x100);
  Alcotest.(check int) "lookups counted" 2 (Nblt.lookups n)

let test_nblt_fifo () =
  let n = Nblt.create 2 in
  Nblt.insert n 1;
  Nblt.insert n 2;
  Nblt.insert n 3;
  Alcotest.(check bool) "oldest evicted" false (Nblt.mem n 1);
  Alcotest.(check bool) "second kept" true (Nblt.mem n 2);
  Alcotest.(check bool) "newest kept" true (Nblt.mem n 3)

let test_nblt_no_duplicates () =
  let n = Nblt.create 2 in
  Nblt.insert n 7;
  Nblt.insert n 7;
  Nblt.insert n 8;
  (* if 7 were inserted twice, 8 would have evicted one copy and 7 the other *)
  Alcotest.(check bool) "7 present" true (Nblt.mem n 7);
  Alcotest.(check bool) "8 present" true (Nblt.mem n 8);
  Alcotest.(check int) "insertions" 2 (Nblt.insertions n)

let test_nblt_zero_capacity () =
  let n = Nblt.create 0 in
  Nblt.insert n 5;
  Alcotest.(check bool) "never matches" false (Nblt.mem n 5)

(* qcheck vs a simple FIFO-set model *)
let prop_nblt_vs_model =
  QCheck.Test.make ~name:"NBLT matches FIFO-set model" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 60) (pair bool (int_bound 8)))
    (fun ops ->
      let n = Nblt.create 4 in
      let model = ref [] in
      List.for_all
        (fun (is_insert, v) ->
          if is_insert then begin
            if not (List.mem v !model) then begin
              model := !model @ [ v ];
              if List.length !model > 4 then model := List.tl !model
            end;
            Nblt.insert n v;
            true
          end
          else Nblt.mem n v = List.mem v !model)
        ops)

(* ---- Detector ---- *)

let test_detector () =
  let iq = 64 in
  (* backward branch spanning 8 instructions *)
  (match Detector.examine ~iq_size:iq ~pc:0x101C (Insn.Br (Bne, 1, 0, -8)) with
  | Detector.Capturable { head; tail; span } ->
      Alcotest.(check int) "head" 0x1000 head;
      Alcotest.(check int) "tail" 0x101C tail;
      Alcotest.(check int) "span" 8 span
  | _ -> Alcotest.fail "expected capturable");
  (* forward branch *)
  (match Detector.examine ~iq_size:iq ~pc:0x1000 (Insn.Br (Bne, 1, 0, 4)) with
  | Detector.Not_a_loop -> ()
  | _ -> Alcotest.fail "forward branch is not a loop");
  (* too large *)
  (match Detector.examine ~iq_size:iq ~pc:0x1000 (Insn.Br (Bne, 1, 0, -1000)) with
  | Detector.Too_large span -> Alcotest.(check int) "span" 1000 span
  | _ -> Alcotest.fail "expected too large");
  (* direct backward jump *)
  (match Detector.examine ~iq_size:iq ~pc:0x1010 (Insn.J (0x1000 / 4)) with
  | Detector.Capturable { span; _ } -> Alcotest.(check int) "jump span" 5 span
  | _ -> Alcotest.fail "backward jump is a loop");
  (* indirect jump is never a loop end *)
  match Detector.examine ~iq_size:iq ~pc:0x1010 (Insn.Jr (Reg.r 5)) with
  | Detector.Not_a_loop -> ()
  | _ -> Alcotest.fail "indirect jump must not detect"

let test_detector_boundary () =
  (* span exactly equal to the queue size is capturable (paper: "no larger
     than the issue queue size") *)
  match Detector.examine ~iq_size:8 ~pc:0x101C (Insn.Br (Bne, 1, 0, -8)) with
  | Detector.Capturable _ -> ()
  | _ -> Alcotest.fail "boundary span must be capturable"

(* ---- Reuse_state ---- *)

let test_reuse_state_transitions () =
  let r = Reuse_state.create () in
  Alcotest.(check bool) "starts normal" true (r.Reuse_state.state = Reuse_state.Normal);
  Reuse_state.start_buffering r ~head:0x100 ~tail:0x140;
  Alcotest.(check bool) "buffering" true (r.Reuse_state.state = Reuse_state.Buffering);
  Alcotest.(check bool) "in loop" true (Reuse_state.in_loop r ~pc:0x120);
  Alcotest.(check bool) "outside" false (Reuse_state.in_loop r ~pc:0x144);
  Reuse_state.promote r;
  Alcotest.(check bool) "reusing" true (r.Reuse_state.state = Reuse_state.Reusing);
  Reuse_state.exit_reuse r;
  Alcotest.(check bool) "back to normal" true (r.Reuse_state.state = Reuse_state.Normal);
  Reuse_state.start_buffering r ~head:0 ~tail:4;
  Reuse_state.revoke r;
  Alcotest.(check int) "stats" 2 r.Reuse_state.n_buffer_attempts;
  Alcotest.(check int) "revokes" 1 r.Reuse_state.n_revokes;
  Alcotest.(check int) "promotions" 1 r.Reuse_state.n_promotions

(* ---- Processor end-to-end ---- *)

let run_both ?(cfg = Config.reuse) src =
  let p = Parse.program_exn src in
  let m = Machine.create p in
  (match Machine.run ~limit:10_000_000 m with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "reference did not halt");
  let proc = Processor.create cfg p in
  (match Processor.run ~cycle_limit:10_000_000 proc with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> Alcotest.fail "processor hit cycle limit");
  let a = Machine.arch_state m and b = Processor.arch_state proc in
  if not (Machine.equal_arch a b) then
    Alcotest.failf "arch mismatch:@.%s"
      (Format.asprintf "%a" (fun ppf () -> Machine.pp_arch_diff ppf a b) ());
  (m, proc)

let loop_src = {|
    li r2, 0
    li r3, 0
loop:
    add r2, r2, r3
    addi r3, r3, 1
    slti r4, r3, 1000
    bne r4, r0, loop
    halt
|}

let test_processor_gating () =
  let _, proc = run_both loop_src in
  let st = Processor.stats proc in
  Alcotest.(check bool) "gating engaged" true (st.Processor.gated_fraction > 0.5);
  Alcotest.(check bool) "reuse dispatches" true (st.Processor.reuse_dispatches > 500);
  Alcotest.(check int) "one buffering attempt" 1 st.Processor.buffer_attempts;
  Alcotest.(check int) "one promotion" 1 st.Processor.promotions;
  Alcotest.(check int) "exit at loop end" 1 st.Processor.reuse_exits

let test_processor_baseline_no_gating () =
  let _, proc = run_both ~cfg:Config.baseline loop_src in
  let st = Processor.stats proc in
  Alcotest.(check int) "no gating" 0 st.Processor.gated_cycles;
  Alcotest.(check int) "no attempts" 0 st.Processor.buffer_attempts

let test_processor_store_load_forwarding () =
  (* store then immediately load the same address inside a reused loop *)
  ignore
    (run_both {|
.space buf 64
    li r2, 0
    la r3, buf
loop:
    sll r4, r2, 2
    add r4, r4, r3
    sw  r2, 0(r4)
    lw  r5, 0(r4)
    add r6, r6, r5
    addi r2, r2, 1
    slti r7, r2, 16
    bne r7, r0, loop
    la  r8, buf
    sw  r6, 60(r8)
    halt
|})

let test_processor_mispredict_recovery () =
  (* data-dependent branch inside the loop alternates direction: the
     static prediction in reuse mode is wrong half the time and the
     machine must still be architecturally exact *)
  let _, proc = run_both {|
    li r2, 0
    li r3, 0
loop:
    andi r4, r2, 1
    beq  r4, r0, even
    addi r3, r3, 10
    j    next
even:
    addi r3, r3, 1
next:
    addi r2, r2, 1
    slti r5, r2, 100
    bne  r5, r0, loop
    halt
|} in
  let st = Processor.stats proc in
  Alcotest.(check bool) "mispredicts happened" true (st.Processor.mispredicts > 5)

let test_processor_procedure_in_loop () =
  ignore
    (run_both {|
    li r2, 0
loop:
    jal bump
    addi r2, r2, 1
    slti r3, r2, 50
    bne r3, r0, loop
    halt
bump:
    addi r4, r4, 3
    jr r31
|})

let test_processor_nblt_blocks_rebuffering () =
  (* a loop that exits after 2 iterations every entry: buffering always
     revoked, so the NBLT should suppress later attempts *)
  let _, proc = run_both {|
    li r2, 0
outer:
    li r3, 0
inner:
    addi r3, r3, 1
    slti r4, r3, 2
    bne r4, r0, inner
    addi r2, r2, 1
    slti r5, r2, 40
    bne r5, r0, outer
    halt
|} in
  let st = Processor.stats proc in
  Alcotest.(check bool) "attempts bounded by NBLT" true (st.Processor.buffer_attempts < 10)

let test_processor_strategy_one_iteration () =
  let cfg = { Config.reuse with Config.buffer_multiple_iterations = false } in
  let _, proc = run_both ~cfg loop_src in
  let r = Processor.reuse_state proc in
  Alcotest.(check int) "single iteration buffered" 1 r.Reuse_state.iters_buffered

let test_processor_multi_iteration () =
  let _, proc = run_both loop_src in
  let r = Processor.reuse_state proc in
  (* 4-instruction body in a 64-entry queue: many iterations unrolled *)
  Alcotest.(check bool) "unrolled several iterations" true (r.Reuse_state.iters_buffered > 4)

let test_processor_div_by_zero () =
  let m, _ = run_both {|
    li r2, 5
    li r3, 0
    div r4, r2, r3
    halt
|} in
  Alcotest.(check int) "div by zero yields 0" 0 (Machine.reg m (Reg.r 4))

let test_processor_fp_kernel () =
  ignore
    (run_both {|
.float v 1.0 2.0 3.0 4.0
    la r2, v
    li r3, 0
loop:
    sll r4, r3, 2
    add r4, r4, r2
    l.s f1, 0(r4)
    fmul f2, f1, f1
    fadd f3, f3, f2
    addi r3, r3, 1
    slti r5, r3, 4
    bne r5, r0, loop
    cvtws r6, f3
    halt
|})

let test_processor_stats_consistency () =
  let m, proc = run_both loop_src in
  let st = Processor.stats proc in
  Alcotest.(check int) "committed = reference count" (Machine.insn_count m)
    st.Processor.committed;
  Alcotest.(check bool) "gated <= cycles" true (st.Processor.gated_cycles <= st.Processor.cycles);
  Alcotest.(check bool) "power positive" true (st.Processor.avg_power > 0.)

let test_processor_reuse_iq_sizes () =
  List.iter
    (fun size -> ignore (run_both ~cfg:(Config.with_iq_size Config.reuse size) loop_src))
    [ 8; 16; 32; 256 ]

let suites =
  [
    ( "core",
      [
        Alcotest.test_case "nblt basic" `Quick test_nblt_basic;
        Alcotest.test_case "nblt fifo" `Quick test_nblt_fifo;
        Alcotest.test_case "nblt duplicates" `Quick test_nblt_no_duplicates;
        Alcotest.test_case "nblt zero capacity" `Quick test_nblt_zero_capacity;
        Alcotest.test_case "detector" `Quick test_detector;
        Alcotest.test_case "detector boundary" `Quick test_detector_boundary;
        Alcotest.test_case "reuse state machine" `Quick test_reuse_state_transitions;
        Alcotest.test_case "gating on a tight loop" `Quick test_processor_gating;
        Alcotest.test_case "baseline never gates" `Quick test_processor_baseline_no_gating;
        Alcotest.test_case "store-load forwarding in reuse" `Quick
          test_processor_store_load_forwarding;
        Alcotest.test_case "mispredict recovery" `Quick test_processor_mispredict_recovery;
        Alcotest.test_case "procedure inside loop" `Quick test_processor_procedure_in_loop;
        Alcotest.test_case "nblt blocks re-buffering" `Quick
          test_processor_nblt_blocks_rebuffering;
        Alcotest.test_case "strategy 1 buffers once" `Quick
          test_processor_strategy_one_iteration;
        Alcotest.test_case "strategy 2 unrolls" `Quick test_processor_multi_iteration;
        Alcotest.test_case "div by zero" `Quick test_processor_div_by_zero;
        Alcotest.test_case "fp kernel" `Quick test_processor_fp_kernel;
        Alcotest.test_case "stats consistency" `Quick test_processor_stats_consistency;
        Alcotest.test_case "reuse across queue sizes" `Quick test_processor_reuse_iq_sizes;
        QCheck_alcotest.to_alcotest prop_nblt_vs_model;
      ] );
  ]

let test_processor_subword_in_loop () =
  (* byte stores followed by overlapping word loads inside a reused loop:
     exercises the width-aware disambiguation under reuse dispatch *)
  ignore
    (run_both {|
.space buf 64
    li r2, 0
    la r3, buf
loop:
    add r4, r3, r2
    sb  r2, 0(r4)
    andi r5, r2, 3
    bne  r5, r0, skip
    lw  r6, 0(r4)
    add r7, r7, r6
skip:
    lbu r8, 0(r4)
    add r9, r9, r8
    addi r2, r2, 1
    slti r10, r2, 48
    bne r10, r0, loop
    halt
|})

(* ---- Loopcache (related-work baseline) ---- *)

let test_loopcache_controller () =
  let lc = Loopcache.create 16 in
  Alcotest.(check bool) "idle" true (Loopcache.state lc = Loopcache.Idle);
  let branch = Insn.Br (Bne, Reg.r 1, Reg.zero, -5) in
  (* taken short backward branch at 0x101C, loop head 0x100C *)
  Loopcache.on_fetch lc ~pc:0x101C ~insn:branch ~pred_npc:0x100C;
  Alcotest.(check bool) "fill" true (Loopcache.state lc = Loopcache.Fill);
  (* second iteration streams through the cache *)
  List.iter
    (fun pc -> Loopcache.on_fetch lc ~pc ~insn:Insn.Nop ~pred_npc:(pc + 4))
    [ 0x100C; 0x1010; 0x1014; 0x1018 ];
  Loopcache.on_fetch lc ~pc:0x101C ~insn:branch ~pred_npc:0x100C;
  Alcotest.(check bool) "active" true (Loopcache.state lc = Loopcache.Active);
  Alcotest.(check bool) "serving head" true (Loopcache.serving lc ~pc:0x100C);
  Alcotest.(check bool) "not serving outside" false (Loopcache.serving lc ~pc:0x1020);
  (* loop exit: branch predicted not taken *)
  List.iter
    (fun pc -> Loopcache.on_fetch lc ~pc ~insn:Insn.Nop ~pred_npc:(pc + 4))
    [ 0x100C; 0x1010; 0x1014; 0x1018 ];
  Loopcache.on_fetch lc ~pc:0x101C ~insn:branch ~pred_npc:0x1020;
  Alcotest.(check bool) "exit to idle" true (Loopcache.state lc = Loopcache.Idle);
  Alcotest.(check int) "one activation" 1 (Loopcache.activations lc);
  Alcotest.(check bool) "supplied instructions" true (Loopcache.supplies lc >= 5)

let test_loopcache_too_large () =
  let lc = Loopcache.create 8 in
  (* span 12 > capacity 8: not a short backward branch *)
  Loopcache.on_fetch lc ~pc:0x102C ~insn:(Insn.Br (Bne, Reg.r 1, Reg.zero, -12))
    ~pred_npc:0x1000;
  Alcotest.(check bool) "stays idle" true (Loopcache.state lc = Loopcache.Idle)

let test_loopcache_fill_abort () =
  let lc = Loopcache.create 16 in
  let branch = Insn.Br (Bne, Reg.r 1, Reg.zero, -3) in
  Loopcache.on_fetch lc ~pc:0x1008 ~insn:branch ~pred_npc:0x1000;
  Alcotest.(check bool) "filling" true (Loopcache.state lc = Loopcache.Fill);
  (* control leaves the loop during fill *)
  Loopcache.on_fetch lc ~pc:0x2000 ~insn:Insn.Nop ~pred_npc:0x2004;
  Alcotest.(check bool) "aborted" true (Loopcache.state lc = Loopcache.Idle)

let test_processor_loopcache_saves_icache () =
  let p = Parse.program_exn loop_src in
  let run cfg =
    let proc = Processor.create cfg p in
    (match Processor.run ~cycle_limit:10_000_000 proc with
    | Processor.Halted -> ()
    | Processor.Cycle_limit -> Alcotest.fail "cycle limit");
    proc
  in
  let base = run Config.baseline in
  let lc = run (Config.loop_cache 64) in
  let accesses proc = (Processor.stats proc).Processor.icache_accesses in
  Alcotest.(check bool) "icache accesses drop" true (accesses lc < accesses base / 2);
  (match Processor.loopcache lc with
  | Some c -> Alcotest.(check bool) "supplies counted" true (Loopcache.supplies c > 1000)
  | None -> Alcotest.fail "loop cache missing");
  (* and it must stay architecturally exact *)
  ignore (run_both ~cfg:(Config.loop_cache 64) loop_src)

let test_processor_filter_cache () =
  let _, proc = run_both ~cfg:(Config.filter_cache ()) loop_src in
  let h = Processor.hierarchy proc in
  match Riq_mem.Hierarchy.l0i h with
  | Some l0 ->
      Alcotest.(check bool) "l0 hot" true
        (Riq_mem.Cache.hits l0 > (9 * Riq_mem.Cache.accesses l0) / 10)
  | None -> Alcotest.fail "filter cache missing"

let test_config_exclusive_mechanisms () =
  Alcotest.(check bool) "reuse + loop cache rejected" true
    (try
       Config.validate { Config.reuse with Config.loop_cache_entries = 64 };
       false
     with Invalid_argument _ -> true)

let extra_suites =
  [
    ( "loopcache",
      [
        Alcotest.test_case "controller fsm" `Quick test_loopcache_controller;
        Alcotest.test_case "rejects large loops" `Quick test_loopcache_too_large;
        Alcotest.test_case "fill abort" `Quick test_loopcache_fill_abort;
        Alcotest.test_case "saves icache accesses" `Quick test_processor_loopcache_saves_icache;
        Alcotest.test_case "filter cache" `Quick test_processor_filter_cache;
        Alcotest.test_case "mechanisms exclusive" `Quick test_config_exclusive_mechanisms;
        Alcotest.test_case "sub-word ops in a reused loop" `Quick
          test_processor_subword_in_loop;
      ] );
  ]

let test_gating_stops_icache () =
  (* During Code Reuse the front end makes no instruction-cache accesses:
     the access count must grow far slower than one per cycle. *)
  let p = Parse.program_exn loop_src in
  let proc = Processor.create Config.reuse p in
  (* run until reuse engages *)
  let guard = ref 0 in
  while
    (Processor.reuse_state proc).Reuse_state.state <> Reuse_state.Reusing
    && (not (Processor.halted proc))
    && !guard < 100_000
  do
    Processor.step_cycle proc;
    incr guard
  done;
  Alcotest.(check bool) "reuse engaged" true
    ((Processor.reuse_state proc).Reuse_state.state = Reuse_state.Reusing);
  let h = Processor.hierarchy proc in
  let before = Riq_mem.Cache.accesses (Riq_mem.Hierarchy.l1i h) in
  let cycles = 200 in
  let gated_before = Processor.gated_cycles proc in
  for _ = 1 to cycles do
    if not (Processor.halted proc) then Processor.step_cycle proc
  done;
  let after = Riq_mem.Cache.accesses (Riq_mem.Hierarchy.l1i h) in
  let gated_delta = Processor.gated_cycles proc - gated_before in
  Alcotest.(check bool) "mostly gated window" true (gated_delta > cycles / 2);
  (* icache accesses only during the non-gated fraction *)
  Alcotest.(check bool) "icache silent while gated" true
    (after - before <= cycles - gated_delta + 2)

let test_reuse_with_divides () =
  (* long-latency non-pipelined operations inside a reused loop *)
  ignore
    (run_both {|
    li r2, 1
    li r3, 0
loop:
    addi r4, r3, 100
    div  r5, r4, r2
    add  r6, r6, r5
    addi r3, r3, 1
    slti r7, r3, 60
    bne  r7, r0, loop
    halt
|})

let test_iq_full_revoke_path () =
  (* a statically-capturable loop whose dynamic iteration (call + large
     callee) exceeds a small queue: buffering must revoke via the
     queue-full rule and register the loop in the NBLT *)
  let body = String.concat "\n" (List.init 30 (fun i ->
      Printf.sprintf "    addi r%d, r%d, 1" (2 + (i mod 8)) (2 + (i mod 8)))) in
  let src = Printf.sprintf {|
    li r20, 0
loop:
    jal big
    addi r20, r20, 1
    slti r21, r20, 30
    bne r21, r0, loop
    halt
big:
%s
    jr r31
|} body in
  let _, proc = run_both ~cfg:(Config.with_iq_size Config.reuse 16) src in
  let st = Processor.stats proc in
  Alcotest.(check bool) "revoked" true (st.Processor.revokes >= 1);
  Alcotest.(check int) "never promoted" 0 st.Processor.promotions;
  Alcotest.(check bool) "nblt stopped retries" true (st.Processor.buffer_attempts <= 3)

let gating_suites =
  [
    ( "gating-internals",
      [
        Alcotest.test_case "icache silent while gated" `Quick test_gating_stops_icache;
        Alcotest.test_case "divides inside reused loop" `Quick test_reuse_with_divides;
        Alcotest.test_case "queue-full revoke path" `Quick test_iq_full_revoke_path;
      ] );
  ]

let test_indirect_jump_resolution () =
  (* computed jumps have no static target: fetch must stall and resume at
     the resolved address, in both cores *)
  ignore
    (run_both {|
    la  r2, hop
    li  r3, 1
    jalr r4, r2
    halt
hop:
    addi r3, r3, 41
    jr  r4
|});
  ignore
    (run_both {|
    la  r5, finish
    jr  r5
    addi r6, r6, 999   # must never execute
finish:
    halt
|})

let test_stable_branch_stays_in_reuse () =
  (* an if inside the loop that always takes the same path: static
     prediction holds, so Code Reuse should persist across iterations *)
  let _, proc = run_both {|
    li r2, 0
loop:
    slti r3, r2, 2000
    beq  r3, r0, rare      # never taken inside the loop range below
    addi r4, r4, 1
rare:
    addi r2, r2, 1
    slti r5, r2, 800
    bne  r5, r0, loop
    halt
|} in
  let st = Processor.stats proc in
  Alcotest.(check bool) "gating persists across biased if" true
    (st.Processor.gated_fraction > 0.6);
  Alcotest.(check bool) "few reuse exits" true (st.Processor.reuse_exits <= 3)

let test_nblt_fifo_eviction () =
  let t = Nblt.create 2 in
  Nblt.insert t 0x100;
  Nblt.insert t 0x200;
  Alcotest.(check bool) "first present" true (Nblt.mem t 0x100);
  Alcotest.(check bool) "second present" true (Nblt.mem t 0x200);
  (* Third insertion evicts the oldest entry, FIFO order. *)
  Nblt.insert t 0x300;
  Alcotest.(check bool) "oldest evicted" false (Nblt.mem t 0x100);
  Alcotest.(check bool) "second survives" true (Nblt.mem t 0x200);
  Alcotest.(check bool) "newest present" true (Nblt.mem t 0x300)

let test_nblt_saturation () =
  let t = Nblt.create 4 in
  (* Keep inserting far past capacity: only the last [capacity] distinct
     addresses survive, and the cursor never walks out of the table. *)
  for i = 1 to 100 do
    Nblt.insert t (4 * i)
  done;
  Alcotest.(check int) "capacity unchanged" 4 (Nblt.capacity t);
  Alcotest.(check int) "every distinct insert counted" 100 (Nblt.insertions t);
  for i = 97 to 100 do
    Alcotest.(check bool) (Printf.sprintf "entry %d present" i) true (Nblt.mem t (4 * i))
  done;
  Alcotest.(check bool) "older entries evicted" false (Nblt.mem t (4 * 96))

let test_nblt_duplicate_insert () =
  let t = Nblt.create 2 in
  Nblt.insert t 0x40;
  Nblt.insert t 0x40;
  Nblt.insert t 0x40;
  Alcotest.(check int) "re-registering is a no-op" 1 (Nblt.insertions t);
  (* The duplicate must not have consumed a FIFO slot. *)
  Nblt.insert t 0x80;
  Alcotest.(check bool) "first still present" true (Nblt.mem t 0x40);
  Alcotest.(check bool) "second present" true (Nblt.mem t 0x80)

let test_nblt_zero_entries () =
  (* The NBLT-ablation configuration: a zero-entry table never matches and
     never registers. *)
  let t = Nblt.create 0 in
  Nblt.insert t 0x100;
  Alcotest.(check bool) "never matches" false (Nblt.mem t 0x100);
  Alcotest.(check int) "never registers" 0 (Nblt.insertions t);
  Alcotest.check_raises "negative size rejected" (Invalid_argument "Nblt.create")
    (fun () -> ignore (Nblt.create (-1)))

(* Figure 2's state machine rejects transitions with no edge: the pipeline
   must never, e.g., revoke without buffering. Each transition function
   asserts its source state. *)
let test_reuse_state_legal_cycle () =
  let t = Reuse_state.create () in
  Reuse_state.start_buffering t ~head:0x1000 ~tail:0x1040;
  Alcotest.(check bool) "buffering" true (t.Reuse_state.state = Reuse_state.Buffering);
  Alcotest.(check bool) "pc in loop" true (Reuse_state.in_loop t ~pc:0x1020);
  Alcotest.(check bool) "pc outside loop" false (Reuse_state.in_loop t ~pc:0x2000);
  Reuse_state.revoke t;
  Alcotest.(check bool) "normal after revoke" true (t.Reuse_state.state = Reuse_state.Normal);
  Reuse_state.start_buffering t ~head:0x1000 ~tail:0x1040;
  Reuse_state.promote t;
  Alcotest.(check bool) "reusing" true (t.Reuse_state.state = Reuse_state.Reusing);
  Reuse_state.exit_reuse t;
  Alcotest.(check bool) "normal after exit" true (t.Reuse_state.state = Reuse_state.Normal);
  Alcotest.(check int) "attempts" 2 t.Reuse_state.n_buffer_attempts;
  Alcotest.(check int) "revokes" 1 t.Reuse_state.n_revokes;
  Alcotest.(check int) "promotions" 1 t.Reuse_state.n_promotions;
  Alcotest.(check int) "exits" 1 t.Reuse_state.n_reuse_exits

let test_reuse_state_illegal_transitions () =
  let asserts f =
    match f () with
    | () -> false
    | exception Assert_failure _ -> true
  in
  let fresh () = Reuse_state.create () in
  let buffering () =
    let t = fresh () in
    Reuse_state.start_buffering t ~head:0 ~tail:16;
    t
  in
  let reusing () =
    let t = buffering () in
    Reuse_state.promote t;
    t
  in
  Alcotest.(check bool) "revoke from Normal" true
    (asserts (fun () -> Reuse_state.revoke (fresh ())));
  Alcotest.(check bool) "promote from Normal" true
    (asserts (fun () -> Reuse_state.promote (fresh ())));
  Alcotest.(check bool) "exit from Normal" true
    (asserts (fun () -> Reuse_state.exit_reuse (fresh ())));
  Alcotest.(check bool) "start while Buffering" true
    (asserts (fun () -> Reuse_state.start_buffering (buffering ()) ~head:0 ~tail:16));
  Alcotest.(check bool) "exit from Buffering" true
    (asserts (fun () -> Reuse_state.exit_reuse (buffering ())));
  Alcotest.(check bool) "start while Reusing" true
    (asserts (fun () -> Reuse_state.start_buffering (reusing ()) ~head:0 ~tail:16));
  Alcotest.(check bool) "revoke from Reusing" true
    (asserts (fun () -> Reuse_state.revoke (reusing ())))

(* ---- packed-core edge cases ---- *)

(* A dependency chain of long-latency loads: every iteration's address
   depends on the previous load's (zero) value, each access lands on a
   fresh L1 line, and every other line misses the L2 out to DRAM. With
   per-load latencies around 8..170 cycles and nothing else in flight,
   writeback events constantly land on wheel slots numerically below the
   current one (cycle land 255 wraps), and the quiescent stretches between
   them are exactly what the skip-ahead lean loop has to cross without
   disturbing a single counter. *)
let chase_src =
  let zeros = String.concat " " (List.init 1024 (fun _ -> "0")) in
  Printf.sprintf {|
    la r2, buf
    li r6, 120
chase:
    lw r5, 0(r2)
    add r2, r2, r5
    addi r2, r2, 32
    addi r6, r6, -1
    bgtz r6, chase
    halt
.word buf %s
|} zeros

let test_event_wheel_wraparound () =
  let _, proc = run_both chase_src in
  let st = Processor.stats proc in
  (* The chain must actually be long-latency and serialized, or the wheel
     never sees distant events: >100 L1 misses and a cycle count that can
     only come from stalling on them. *)
  Alcotest.(check bool)
    (Printf.sprintf "every iteration misses L1 (%d)" st.Processor.dcache_misses)
    true
    (st.Processor.dcache_misses > 100);
  Alcotest.(check bool)
    (Printf.sprintf "latency-bound (%d cycles)" st.Processor.cycles)
    true
    (st.Processor.cycles > 120 * 30);
  (* ...which wraps the 256-slot wheel dozens of times. *)
  Alcotest.(check bool) "wheel wrapped many times" true
    (st.Processor.cycles > 256 * 10);
  Alcotest.(check bool) "skip-ahead crossed the stalls" true
    (st.Processor.skipped_cycles > 0);
  (* The lean loop must be invisible next to the cycle-by-cycle core. *)
  let off =
    Processor.create
      { Config.reuse with Config.skip_ahead = false; loop_ffwd = false }
      (Parse.program_exn chase_src)
  in
  (match Processor.run ~cycle_limit:10_000_000 off with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> Alcotest.fail "fast-off run hit cycle limit");
  let scrub (s : Processor.stats) =
    { s with Processor.skipped_cycles = 0; ffwd_iterations = 0 }
  in
  Alcotest.(check bool) "stats bit-identical to fast-off" true
    (scrub (Processor.stats off) = scrub st)

let test_decode_cache_way_conflict () =
  (* 17 distinct loop tails over a 16-way decode cache: tails sit 5 words
     apart, so (gcd(5,16)=1) the 17th tail is the first to revisit a way
     and evicts its resident. Re-entering the evicted loop on the next
     outer iteration must reinstall — and stay architecturally exact. *)
  let inner i =
    Printf.sprintf
      "    li r3, 20\nl%d:\n    addi r4, r4, %d\n    xori r5, r4, %d\n    addi r3, r3, -1\n    bgtz r3, l%d\n"
      i (i + 1) i i
  in
  let src =
    "    li r2, 3\nouter:\n"
    ^ String.concat "" (List.init 17 inner)
    ^ "    addi r2, r2, -1\n    bgtz r2, outer\n    halt\n"
  in
  let _, proc = run_both src in
  let st = Processor.stats proc in
  Alcotest.(check bool)
    (Printf.sprintf "all 17 loops promote (%d)" st.Processor.promotions)
    true
    (st.Processor.promotions >= 17);
  Alcotest.(check bool) "decode cache supplies descriptors" true
    (Processor.decode_cache_hits proc > 0);
  Alcotest.(check bool)
    (Printf.sprintf "way conflict forces reinstalls (%d)"
       (Processor.decode_cache_installs proc))
    true
    (Processor.decode_cache_installs proc > 17)

let misc_suites =
  [
    ( "packed-core-edges",
      [
        Alcotest.test_case "event-wheel wraparound under long-latency chains"
          `Quick test_event_wheel_wraparound;
        Alcotest.test_case "decode-cache eviction across 17 loop tails" `Quick
          test_decode_cache_way_conflict;
      ] );
    ( "pipeline-misc",
      [
        Alcotest.test_case "indirect jump resolution" `Quick test_indirect_jump_resolution;
        Alcotest.test_case "biased if keeps reuse" `Quick test_stable_branch_stays_in_reuse;
      ] );
    ( "reuse-structures",
      [
        Alcotest.test_case "nblt fifo eviction" `Quick test_nblt_fifo_eviction;
        Alcotest.test_case "nblt saturation" `Quick test_nblt_saturation;
        Alcotest.test_case "nblt duplicate insert" `Quick test_nblt_duplicate_insert;
        Alcotest.test_case "nblt zero entries" `Quick test_nblt_zero_entries;
        Alcotest.test_case "reuse-state legal cycle" `Quick test_reuse_state_legal_cycle;
        Alcotest.test_case "reuse-state illegal transitions" `Quick
          test_reuse_state_illegal_transitions;
      ] );
  ]
