(* riq-sim: command-line driver for the simulator and the experiments.

   Subcommands:
     run    — simulate one benchmark (or an assembly file) on a chosen
              configuration and print statistics
     bench  — list the built-in benchmarks
     sweep  — run the paper's issue-queue sweep through the experiment
              engine (parallel workers, content-addressed result cache,
              or a remote serve daemon)
     fig    — regenerate one of the paper's tables/figures
     serve  — daemon: accept jobs over a socket, batch duplicates, run
              them on resident workers, answer repeats from the shared
              result store
     top    — live dashboard over a serve daemon's metrics (or --prom /
              --json one-shot scrapes)
     disasm — print the compiled RIQ32 code of a benchmark *)

open Cmdliner
open Riq_util
open Riq_asm
open Riq_power
open Riq_ooo
open Riq_core
open Riq_workloads
open Riq_harness

let find_workload name =
  try Workloads.find name
  with Not_found ->
    failwith
      (Printf.sprintf "unknown benchmark %S (valid: %s)" name
         (String.concat ", "
            (List.map (fun w -> w.Workloads.name) (Workloads.all @ Workloads.extras))))

let load_program bench file optimized =
  match (bench, file) with
  | Some name, None ->
      let w = find_workload name in
      if optimized then Workloads.optimized w else Workloads.program w
  | None, Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      Parse.program_exn src
  | Some _, Some _ -> failwith "give either --bench or --file, not both"
  | None, None -> failwith "one of --bench or --file is required"

let print_stats cfg (r : Run.result) breakdown_requested account =
  let s = r.Run.stats in
  Printf.printf "cycles              %d\n" s.Processor.cycles;
  Printf.printf "instructions        %d\n" s.Processor.committed;
  Printf.printf "IPC                 %.3f\n" s.Processor.ipc;
  Printf.printf "branches            %d (%d mispredicted)\n" s.Processor.branches
    s.Processor.mispredicts;
  Printf.printf "loads / stores      %d / %d\n" s.Processor.loads s.Processor.stores;
  Printf.printf "icache accesses     %d (%d misses)\n" s.Processor.icache_accesses
    s.Processor.icache_misses;
  Printf.printf "dcache accesses     %d (%d misses)\n" s.Processor.dcache_accesses
    s.Processor.dcache_misses;
  Printf.printf "avg power           %.2f units/cycle\n" s.Processor.avg_power;
  if cfg.Config.reuse_enabled then begin
    Printf.printf "gated cycles        %d (%.1f%%)\n" s.Processor.gated_cycles
      (100. *. s.Processor.gated_fraction);
    Printf.printf "reuse dispatches    %d\n" s.Processor.reuse_dispatches;
    Printf.printf "reuse committed     %d (%.1f%% coverage)\n" s.Processor.reuse_committed
      (if s.Processor.committed = 0 then 0.
       else 100. *. float_of_int s.Processor.reuse_committed /. float_of_int s.Processor.committed);
    Printf.printf "buffering           %d attempts, %d revokes, %d promotions, %d exits\n"
      s.Processor.buffer_attempts s.Processor.revokes s.Processor.promotions
      s.Processor.reuse_exits
  end;
  if breakdown_requested then begin
    Printf.printf "\nPower breakdown:\n";
    Array.iter
      (fun (c, frac) ->
        if frac > 0.002 then Printf.printf "  %-12s %5.1f%%\n" (Component.name c) (100. *. frac))
      (Account.breakdown account)
  end

let run_cmd =
  let bench =
    Arg.(value & opt (some string) None & info [ "bench"; "b" ] ~docv:"NAME"
           ~doc:"Built-in benchmark to simulate (see $(b,riq-sim bench)).")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"FILE"
           ~doc:"RIQ32 assembly file to simulate instead of a benchmark.")
  in
  let iq =
    Arg.(value & opt int 64 & info [ "iq" ] ~docv:"N"
           ~doc:"Issue queue size (ROB scales with it, LSQ to half).")
  in
  let reuse =
    Arg.(value & flag & info [ "reuse"; "r" ]
           ~doc:"Enable the reusable-instruction issue queue.")
  in
  let optimized =
    Arg.(value & flag & info [ "optimized"; "O" ]
           ~doc:"Apply loop distribution before code generation.")
  in
  let breakdown =
    Arg.(value & flag & info [ "power-breakdown"; "p" ] ~doc:"Print the power breakdown.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Validate the final architectural state against the reference simulator.")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
           ~doc:"Write the unified run report (stats, power groups, loop decisions, \
                 sampler summary) as schema-versioned JSON.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the simulation N times on fresh processor instances and report \
                 the median wall time (results are deterministic; only timing varies).")
  in
  let action bench file iq reuse optimized breakdown check report repeat =
    if repeat < 1 then failwith "--repeat must be >= 1";
    let program = load_program bench file optimized in
    let cfg = Config.with_iq_size (if reuse then Config.reuse else Config.baseline) iq in
    let sampler =
      match report with
      | None -> None
      | Some _ -> Some (Riq_obs.Sampler.create ~channels:Processor.sample_channels ())
    in
    (* With --repeat, the simulation runs N times on fresh processor
       instances (results are deterministic, so only timing varies); the
       median wall time is the reported figure and the last instance
       supplies the stats. The sampler only rides the last run. *)
    let walls = Array.make repeat 0. in
    let last = ref None in
    let last_cpu = ref 0. in
    for i = 0 to repeat - 1 do
      let sampler = if i = repeat - 1 then sampler else None in
      let p = Processor.create ?sampler cfg program in
      let w0 = Unix.gettimeofday () in
      let c0 = (Unix.times ()).Unix.tms_utime in
      (match Processor.run p with
      | Processor.Halted -> ()
      | Processor.Cycle_limit -> failwith "cycle limit exceeded");
      last_cpu := (Unix.times ()).Unix.tms_utime -. c0;
      walls.(i) <- Unix.gettimeofday () -. w0;
      last := Some p
    done;
    let p = match !last with Some p -> p | None -> assert false in
    let wall_median =
      let a = Array.copy walls in
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    if repeat > 1 then
      Printf.printf "wall time           %.4f s median of %d runs (%.3f Minsns/s)\n"
        wall_median repeat
        (float_of_int (Processor.committed p) /. wall_median /. 1e6);
    if check then begin
      let m = Riq_interp.Machine.create program in
      match Riq_interp.Machine.run m with
      | Riq_interp.Machine.Halted ->
          if
            not
              (Riq_interp.Machine.equal_arch
                 (Riq_interp.Machine.arch_state m)
                 (Processor.arch_state p))
          then failwith "architectural state mismatch vs reference simulator"
          else print_endline "differential check: architectural state matches"
      | Riq_interp.Machine.Insn_limit | Riq_interp.Machine.Bad_pc _ ->
          failwith "reference simulator did not halt"
    end;
    let acct = Processor.account p in
    let result =
      {
        Run.stats = Processor.stats p;
        sim_seconds = !last_cpu;
        icache_power = Account.group_power acct Component.G_icache;
        bpred_power = Account.group_power acct Component.G_bpred;
        iq_power = Account.group_power acct Component.G_iq;
        overhead_power = Account.group_power acct Component.G_overhead;
        total_power = Account.avg_power acct;
        arch_ok = None;
      }
    in
    print_stats cfg result breakdown acct;
    match report with
    | None -> ()
    | Some path ->
        Json.to_file path (Report.make ?benchmark:bench p);
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a benchmark or an assembly file")
    Term.(
      const action $ bench $ file $ iq $ reuse $ optimized $ breakdown $ check $ report
      $ repeat)

let bench_cmd =
  let action () =
    List.iter
      (fun w ->
        Printf.printf "%-8s %-14s %s\n" w.Workloads.name w.Workloads.source
          w.Workloads.description)
      Workloads.all
  in
  Cmd.v (Cmd.info "bench" ~doc:"List the built-in benchmarks") Term.(const action $ const ())

(* Shared engine flags: worker count, cache policy, per-job timeout. *)
let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Number of worker processes (1 = in-process, no fork).")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Disable the on-disk result cache.")

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Result cache root (default \\$RIQ_CACHE_DIR or .riq-cache).")

let timeout_arg =
  Arg.(value & opt float 600. & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-job wall-clock budget in worker-pool mode (<= 0 disables).")

let serve_addr_arg =
  Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"ADDR"
         ~doc:"Run simulations through a $(b,riq-sim serve) daemon at ADDR (a Unix \
               socket path or host:port) instead of local workers; the daemon's \
               shared cache then serves repeats across clients and hosts.")

let progress_reporter () =
  let last = ref "" in
  fun (p : Riq_exp.Engine.progress) ->
    let line =
      Printf.sprintf "[sweep] %d/%d done | %d cache hits, %d dedup, %d run, %d failed | %d worker%s"
        p.Riq_exp.Engine.finished p.Riq_exp.Engine.total p.Riq_exp.Engine.cache_hits
        p.Riq_exp.Engine.deduped p.Riq_exp.Engine.executed p.Riq_exp.Engine.failures
        p.Riq_exp.Engine.workers
        (if p.Riq_exp.Engine.workers > 1 then "s" else "")
    in
    if line <> !last then begin
      last := line;
      Printf.eprintf "\r%s%!" line;
      if p.Riq_exp.Engine.finished = p.Riq_exp.Engine.total then Printf.eprintf "\n%!"
    end

(* Engine + (in serve mode) the client it runs through, both instrumented
   against one metrics registry so `engine_*` and `client_*` series land
   in the same scrape. *)
let make_engine ?serve ?trace ~jobs ~no_cache ~cache_dir ~timeout ~progress () =
  let on_progress = if progress then Some (progress_reporter ()) else None in
  let metrics = Riq_obs.Metrics.create () in
  match serve with
  | Some addr ->
      (* Remote backend: no local cache — the daemon's shared store is the
         cache, and keeping a local one would hide its hit counters. *)
      let client =
        Riq_svc.Client.connect ~klass:Riq_svc.Protocol.Interactive ~metrics ?trace
          (Riq_svc.Protocol.address_of_string addr)
      in
      let engine =
        Riq_exp.Engine.create ~backend:(Riq_svc.Client.backend client) ~timeout
          ~metrics ?on_progress ()
      in
      (engine, Some client, metrics)
  | None ->
      let cache =
        if no_cache then None else Some (Riq_exp.Cache.open_ ?root:cache_dir ())
      in
      let engine =
        Riq_exp.Engine.create ~workers:jobs ?cache ~timeout ~metrics ?on_progress ()
      in
      (engine, None, metrics)

(* One merged Chrome trace: the client's own spans plus the daemon's span
   ring (already shifted onto the client clock by the handshake offset).
   Metadata records lead, payload events follow sorted by timestamp, so
   the file is monotone and loads in Perfetto as one multi-process
   timeline. *)
let write_merged_trace ~path ~tracer ~client =
  let client_events = List.map Riq_obs.Tracer.event_json (Riq_obs.Tracer.events tracer) in
  let daemon_events =
    match Riq_svc.Client.server_trace ~since:0 client with
    | Ok (events, _next) -> events
    | Error msg ->
        Riq_obs.Log.warn ~scope:"sweep"
          ~kv:[ ("error", msg) ]
          "daemon trace unavailable; writing client spans only";
        []
  in
  let ts_of j =
    match Option.bind (Json.member "ts" j) Json.to_int with Some t -> t | None -> 0
  in
  let is_meta j = Json.member "ph" j = Some (Json.String "M") in
  let metas, payload =
    List.partition is_meta (client_events @ daemon_events)
  in
  let payload = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) payload in
  Json.to_file path (Json.List (metas @ payload));
  Printf.printf "wrote %s: %d events across %d processes (open in ui.perfetto.dev)\n"
    path
    (List.length metas + List.length payload)
    (List.length
       (List.sort_uniq compare
          (List.filter_map
             (fun j -> Option.bind (Json.member "pid" j) Json.to_int)
             (metas @ payload))))

let print_engine_summary engine =
  let s = Riq_exp.Engine.stats engine in
  Printf.printf
    "engine: %d jobs = %d cache hits + %d deduped + %d dispatched (%d failed)\n"
    s.Riq_exp.Engine.jobs s.Riq_exp.Engine.cache_hits s.Riq_exp.Engine.deduped
    s.Riq_exp.Engine.executed s.Riq_exp.Engine.failures;
  if s.Riq_exp.Engine.retries > 0 || s.Riq_exp.Engine.timeouts > 0 then
    Printf.printf "        %d retried after worker crashes, %d timed out\n"
      s.Riq_exp.Engine.retries s.Riq_exp.Engine.timeouts;
  Printf.printf
    "        %.1f s wall, %.1f s worker-busy, %s x%d, %.0f%% utilization\n"
    s.Riq_exp.Engine.wall_seconds s.Riq_exp.Engine.busy_seconds
    (Riq_exp.Engine.backend_name engine)
    (Riq_exp.Engine.workers engine)
    (100. *. Riq_exp.Engine.utilization engine)

let sweep_cmd =
  let sizes =
    Arg.(value & opt (list int) Sweep.default_sizes & info [ "sizes"; "s" ] ~docv:"N,N,..."
           ~doc:"Issue-queue sizes to sweep (default the paper's 32,64,128,256).")
  in
  let benches =
    Arg.(value & opt (list string) [] & info [ "bench"; "b" ] ~docv:"NAME,NAME,..."
           ~doc:"Benchmarks to sweep (default all of Table 2).")
  in
  let no_check =
    Arg.(value & flag & info [ "no-check" ]
           ~doc:"Skip the per-run differential validation (faster).")
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also export per-cell statistics, power groups and engine counters as JSON.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated values instead of tables.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Serve mode only: write one merged Chrome trace covering the client's \
                 submit/await spans and the daemon's queue-wait and per-worker \
                 simulate spans, clock-aligned (load it in ui.perfetto.dev).")
  in
  let action jobs no_cache cache_dir timeout serve sizes benches no_check json_file csv
      trace_file =
    let benchmarks =
      if benches = [] then Workloads.all else List.map find_workload benches
    in
    let tracer =
      match (trace_file, serve) with
      | None, _ -> None
      | Some _, None -> failwith "--trace requires --serve (it is a service-level trace)"
      | Some _, Some _ ->
          let tr = Riq_obs.Tracer.ring ~capacity:16384 () in
          Riq_obs.Tracer.set_pid tr (Unix.getpid ());
          Riq_obs.Tracer.set_process_name tr "riq-sim sweep";
          Riq_obs.Tracer.set_thread_name tr ~tid:0 "client";
          Some tr
    in
    let engine, client, _metrics =
      make_engine ?serve ?trace:tracer ~jobs ~no_cache ~cache_dir ~timeout
        ~progress:true ()
    in
    let sweep = Sweep.run ~engine ~sizes ~benchmarks ~check:(not no_check) () in
    let emit t = if csv then print_string (Table.to_csv t) else Table.print t in
    emit (Figures.fig5 sweep);
    print_newline ();
    emit (Figures.fig6 sweep);
    print_newline ();
    emit (Figures.fig7 sweep);
    print_newline ();
    emit (Figures.fig8 sweep);
    print_newline ();
    (match json_file with
    | Some path ->
        Riq_util.Json.to_file path (Sweep.to_json ~engine sweep);
        Printf.printf "wrote %s\n" path
    | None -> ());
    (match (trace_file, tracer, client) with
    | Some path, Some tr, Some cl -> write_merged_trace ~path ~tracer:tr ~client:cl
    | _ -> ());
    print_engine_summary engine
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the issue-queue sweep through the experiment engine (parallel workers, \
          content-addressed result cache, or a remote serve daemon) and print Figures 5-8")
    Term.(const action $ jobs_arg $ no_cache_arg $ cache_dir_arg $ timeout_arg
          $ serve_addr_arg $ sizes $ benches $ no_check $ json_file $ csv $ trace_file)

let fig_cmd =
  let which =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE"
           ~doc:"One of: table1 table2 fig5 fig6 fig7 fig8 fig9 coverage revokes nblt strategy related predictor unroll all")
  in
  let no_check =
    Arg.(value & flag & info [ "no-check" ]
           ~doc:"Skip the per-run differential validation (faster).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated values instead of a table.")
  in
  let action which no_check csv jobs no_cache cache_dir timeout serve =
    let check = not no_check in
    let engine, _client, _metrics =
      make_engine ?serve ~jobs ~no_cache ~cache_dir ~timeout ~progress:true ()
    in
    let sweep = lazy (Sweep.run ~engine ~check ()) in
    let emit t = if csv then print_string (Table.to_csv t) else Table.print t in
    let print_fig = function
      | "table1" -> print_string (Figures.table1 ())
      | "table2" -> emit (Figures.table2 ())
      | "fig5" -> emit (Figures.fig5 (Lazy.force sweep))
      | "fig6" -> emit (Figures.fig6 (Lazy.force sweep))
      | "fig7" -> emit (Figures.fig7 (Lazy.force sweep))
      | "fig8" -> emit (Figures.fig8 (Lazy.force sweep))
      | "fig9" -> emit (Figures.fig9 ~engine ~check ())
      | "coverage" -> emit (Figures.coverage (Lazy.force sweep))
      | "revokes" -> emit (Figures.revoke_causes ())
      | "nblt" -> emit (Figures.nblt_ablation ~engine ~check ())
      | "strategy" -> emit (Figures.strategy_ablation ~engine ~check ())
      | "related" -> emit (Figures.related_work ~engine ~check ())
      | "predictor" -> emit (Figures.predictor_ablation ~engine ~check ())
      | "unroll" -> emit (Figures.unroll_ablation ~engine ~check ())
      | other -> failwith ("unknown figure: " ^ other)
    in
    if which = "all" then
      List.iter
        (fun f ->
          print_fig f;
          print_newline ())
        [
          "table1"; "table2"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "coverage"; "revokes";
          "nblt"; "strategy"; "related"; "predictor"; "unroll";
        ]
    else print_fig which
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate a table or figure of the paper")
    Term.(const action $ which $ no_check $ csv $ jobs_arg $ no_cache_arg $ cache_dir_arg
          $ timeout_arg $ serve_addr_arg)

let trace_cmd =
  let bench_pos =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Built-in benchmark to trace (same as $(b,--bench)).")
  in
  let bench =
    Arg.(value & opt (some string) None & info [ "bench"; "b" ] ~docv:"NAME"
           ~doc:"Built-in benchmark to trace.")
  in
  let file =
    Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"FILE"
           ~doc:"RIQ32 assembly file to trace.")
  in
  let limit =
    Arg.(value & opt int 200 & info [ "n" ] ~docv:"N"
           ~doc:"Commit-log mode: number of instructions to trace (from the start).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Run the cycle-accurate simulator instead and stream a Chrome trace-event \
                 JSON file (load it in ui.perfetto.dev or chrome://tracing).")
  in
  let reuse =
    Arg.(value & flag & info [ "reuse"; "r" ]
           ~doc:"Chrome-trace mode: enable the reusable-instruction issue queue.")
  in
  let iq =
    Arg.(value & opt int 64 & info [ "iq" ] ~docv:"N"
           ~doc:"Chrome-trace mode: issue queue size.")
  in
  let stride =
    Arg.(value & opt int 64 & info [ "stride" ] ~docv:"CYCLES"
           ~doc:"Chrome-trace mode: cycles between counter-track samples.")
  in
  let chrome_trace bench file path reuse iq stride =
    let program = load_program bench file false in
    let cfg = Config.with_iq_size (if reuse then Config.reuse else Config.baseline) iq in
    let label = match bench with Some b -> "riq-sim " ^ b | None -> "riq-sim" in
    let oc = open_out path in
    let tracer = Riq_obs.Tracer.stream ~process_name:label oc in
    let sampler = Riq_obs.Sampler.create ~stride ~channels:Processor.sample_channels () in
    let p = Processor.create ~tracer ~sampler cfg program in
    (match Processor.run p with
    | Processor.Halted -> ()
    | Processor.Cycle_limit -> failwith "cycle limit exceeded");
    (* Close any gating span still open when the halt committed, so the
       viewer never sees an unterminated slice. *)
    (match (Processor.reuse_state p).Reuse_state.state with
    | Reuse_state.Buffering ->
        Riq_obs.Tracer.end_span tracer ~now:(Processor.cycles p) ~cat:"reuse" "loop-buffering"
    | Reuse_state.Reusing ->
        Riq_obs.Tracer.end_span tracer ~now:(Processor.cycles p) ~cat:"reuse" "code-reuse"
    | Reuse_state.Normal -> ());
    Riq_obs.Tracer.close tracer;
    close_out oc;
    Printf.printf "wrote %s: %d events over %d cycles (open in ui.perfetto.dev)\n" path
      (Riq_obs.Tracer.recorded tracer) (Processor.cycles p)
  in
  let action bench_pos bench file limit out reuse iq stride =
    let bench =
      match (bench_pos, bench) with
      | Some _, Some _ -> failwith "give the benchmark either positionally or with --bench"
      | Some _, None -> bench_pos
      | None, b -> b
    in
    match out with
    | Some path -> chrome_trace bench file path reuse iq stride
    | None ->
    let program = load_program bench file false in
    let m = Riq_interp.Machine.create program in
    let continue_ = ref true in
    while !continue_ && Riq_interp.Machine.insn_count m < limit do
      let pc = Riq_interp.Machine.pc m in
      match Program.insn_at program pc with
      | None -> continue_ := false
      | Some insn ->
          let dest = Riq_isa.Insn.dest insn in
          (match Riq_interp.Machine.step m with
          | Some _ -> continue_ := false
          | None -> ());
          let written =
            match dest with
            | Some d when Riq_isa.Reg.is_fp d ->
                Printf.sprintf "  %s <- %g" (Riq_isa.Reg.to_string d)
                  (Riq_interp.Machine.freg m d)
            | Some d ->
                Printf.sprintf "  %s <- %d" (Riq_isa.Reg.to_string d)
                  (Riq_interp.Machine.reg m d)
            | None -> ""
          in
          Printf.printf "%08x  %-28s%s\n" pc (Riq_isa.Insn.to_string insn) written
    done
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Architectural commit log from the reference simulator, or — with $(b,--out) — a \
          Chrome trace of the cycle-accurate pipeline (reuse-engine spans, pipeline \
          events, IPC/occupancy/power counter tracks)")
    Term.(const action $ bench_pos $ bench $ file $ limit $ out $ reuse $ iq $ stride)

let pipeview_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let reuse =
    Arg.(value & flag & info [ "reuse"; "r" ] ~doc:"Enable the reusable issue queue.")
  in
  let cycles =
    Arg.(value & opt int 200 & info [ "n" ] ~docv:"N" ~doc:"Cycles to display.")
  in
  let skip =
    Arg.(value & opt int 0 & info [ "skip" ] ~docv:"N" ~doc:"Cycles to skip first.")
  in
  let action bench reuse cycles skip =
    let program = load_program (Some bench) None false in
    let cfg = if reuse then Config.reuse else Config.baseline in
    let p = Processor.create cfg program in
    for _ = 1 to skip do
      if not (Processor.halted p) then Processor.step_cycle p
    done;
    Printf.printf "%8s  %-14s %4s %4s %4s  %s\n" "cycle" "iq-state" "iq" "rob" "lsq"
      "committed";
    let state_name () =
      match (Processor.reuse_state p).Reuse_state.state with
      | Reuse_state.Normal -> "normal"
      | Reuse_state.Buffering -> "buffering"
      | Reuse_state.Reusing -> "code-reuse"
    in
    let continue_ = ref true in
    let shown = ref 0 in
    while !continue_ && !shown < cycles do
      if Processor.halted p then continue_ := false
      else begin
        Processor.step_cycle p;
        incr shown;
        let iq, rob, lsq = Processor.occupancy p in
        Printf.printf "%8d  %-14s %4d %4d %4d  %d\n" (Processor.cycles p) (state_name ()) iq
          rob lsq (Processor.committed p)
      end
    done
  in
  Cmd.v
    (Cmd.info "pipeview" ~doc:"Per-cycle pipeline occupancy and issue-queue state")
    Term.(const action $ bench $ reuse $ cycles $ skip)

let serve_cmd =
  let addr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR"
           ~doc:"Address to listen on: a Unix socket path or host:port.")
  in
  let workers =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Resident simulation worker processes.")
  in
  let budget =
    Arg.(value & opt (some int) None & info [ "budget-mb" ] ~docv:"MB"
           ~doc:"Store size budget in megabytes; least-recently-used entries are \
                 evicted when a store pushes past it.")
  in
  let timeout =
    Arg.(value & opt float 600. & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-job wall-clock budget (<= 0 disables).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ]
           ~doc:"Only log errors (equivalent to RIQ_LOG=error).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Atomically rewrite FILE with the Prometheus text exposition of the \
                 daemon's merged metrics (daemon + workers) every few seconds and at \
                 shutdown — a scrape target for file-based collectors.")
  in
  let metrics_interval =
    Arg.(value & opt float 5. & info [ "metrics-interval" ] ~docv:"SECONDS"
           ~doc:"Seconds between $(b,--metrics-out) rewrites.")
  in
  let action addr workers cache_dir budget timeout quiet metrics_out metrics_interval =
    if quiet then Riq_obs.Log.set_level Riq_obs.Log.Error;
    (* One registry for the store and the daemon: store_* and serve_*
       series come back in a single scrape. *)
    let metrics = Riq_obs.Metrics.create () in
    let store =
      Riq_svc.Store.open_ ?root:cache_dir
        ?budget_bytes:(Option.map (fun mb -> mb * 1024 * 1024) budget)
        ~metrics ()
    in
    let timeout = if timeout <= 0. then None else Some timeout in
    let config =
      Riq_svc.Server.config ~workers ~timeout ~metrics ?metrics_out ~metrics_interval
        ~address:(Riq_svc.Protocol.address_of_string addr)
        store
    in
    Riq_svc.Server.serve config
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the sweep service daemon: accept simulation jobs over a Unix or TCP \
          socket, batch identical requests, schedule them on resident workers with a \
          fair two-class queue, and answer repeats from the shared result store. \
          SIGTERM drains gracefully.")
    Term.(const action $ addr $ workers $ cache_dir_arg $ budget $ timeout $ quiet
          $ metrics_out $ metrics_interval)

let top_cmd =
  let addr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR"
           ~doc:"Daemon address: a Unix socket path or host:port.")
  in
  let interval =
    Arg.(value & opt float 2. & info [ "interval"; "n" ] ~docv:"SECONDS"
           ~doc:"Seconds between refreshes.")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Print one snapshot and exit.")
  in
  let prom =
    Arg.(value & flag & info [ "prom" ]
           ~doc:"Print the raw Prometheus text exposition and exit.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the metrics snapshot as riq-metrics/1 JSON and exit.")
  in
  let module M = Riq_obs.Metrics in
  let find snap name labels =
    List.find_opt
      (fun s -> s.M.s_name = name && s.M.s_labels = labels)
      snap
  in
  let counter_of snap name labels =
    match find snap name labels with
    | Some { M.s_value = M.Counter_sample v; _ } -> v
    | _ -> 0
  in
  let hist_line snap name labels =
    match find snap name labels with
    | Some { M.s_value = M.Histogram_sample { bounds; counts; sum }; _ } ->
        let n = Array.fold_left ( + ) 0 counts in
        if n = 0 then "      (no samples)"
        else
          Printf.sprintf "%6d samples | mean %8.3fs | p50 %8.3fs | p95 %8.3fs" n
            (sum /. float_of_int n)
            (M.histogram_quantile 0.5 ~bounds ~counts)
            (M.histogram_quantile 0.95 ~bounds ~counts)
    | _ -> "      (absent)"
  in
  let member_int name j =
    match Option.bind (Json.member name j) Json.to_int with Some v -> v | None -> 0
  in
  let render client =
    let stats =
      match Riq_svc.Client.server_stats client with
      | Some s -> s
      | None -> failwith "daemon went away"
    in
    let snap =
      match Riq_svc.Client.server_metrics client with
      | Ok s -> s
      | Error e -> failwith ("metrics scrape failed: " ^ e)
    in
    let str name =
      match Option.bind (Json.member name stats) Json.to_str with
      | Some s -> s
      | None -> "?"
    in
    let uptime =
      match Option.bind (Json.member "uptime_seconds" stats) Json.to_float_opt with
      | Some f -> f
      | None -> 0.
    in
    Printf.printf "riq-serve %s | up %.0fs | %d workers | draining: %b\n" (str "address")
      uptime (member_int "workers" stats)
      (Json.member "draining" stats = Some (Json.Bool true));
    Printf.printf
      "jobs      %d submitted = %d store hits + %d batched + %d executed (%d retries, %d timeouts)\n"
      (member_int "submitted" stats) (member_int "hits" stats)
      (member_int "batched" stats) (member_int "executed" stats)
      (member_int "retries" stats) (member_int "timeouts" stats);
    Printf.printf "queues    interactive %d | batch %d | inflight %d | open tickets %d\n"
      (member_int "queue_interactive" stats)
      (member_int "queue_batch" stats) (member_int "inflight" stats)
      (member_int "tickets_open" stats);
    (match Json.member "store" stats with
    | Some store ->
        Printf.printf "store     %d entries, %d bytes, %d evictions\n"
          (member_int "entries" store) (member_int "bytes" store)
          (member_int "evictions" store)
    | None -> ());
    Printf.printf "workers   %d jobs executed by residents\n"
      (counter_of snap "worker_jobs_total" []);
    Printf.printf "wait(i)   %s\n"
      (hist_line snap "serve_queue_wait_seconds" [ ("class", "interactive") ]);
    Printf.printf "wait(b)   %s\n"
      (hist_line snap "serve_queue_wait_seconds" [ ("class", "batch") ]);
    Printf.printf "simulate  %s\n" (hist_line snap "serve_simulate_seconds" []);
    flush stdout
  in
  let action addr interval once prom json =
    let client =
      Riq_svc.Client.connect (Riq_svc.Protocol.address_of_string addr)
    in
    if prom then begin
      match Riq_svc.Client.server_exposition client with
      | Ok s -> print_string s
      | Error e -> failwith ("metrics scrape failed: " ^ e)
    end
    else if json then begin
      match Riq_svc.Client.server_metrics client with
      | Ok snap -> print_endline (Json.to_string (M.to_json snap))
      | Error e -> failwith ("metrics scrape failed: " ^ e)
    end
    else if once then render client
    else begin
      let continue_ = ref true in
      while !continue_ do
        (* Home + clear-to-end keeps the refresh flicker-free. *)
        print_string "\027[H\027[J";
        (try render client
         with Failure msg ->
           continue_ := false;
           Printf.printf "%s\n" msg);
        flush stdout;
        if !continue_ then
          try ignore (Unix.select [] [] [] interval) with _ -> ()
      done
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a running serve daemon: job and store counters, \
          per-class queue depth and wait quantiles, simulate-time quantiles — \
          refreshed from the $(b,stats) and $(b,metrics) ops. With $(b,--prom) or \
          $(b,--json), print one machine-readable scrape instead.")
    Term.(const action $ addr $ interval $ once $ prom $ json)

let disasm_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let optimized =
    Arg.(value & flag & info [ "optimized"; "O" ] ~doc:"Disassemble the loop-distributed code.")
  in
  let action bench optimized =
    let w = find_workload bench in
    let program = if optimized then Workloads.optimized w else Workloads.program w in
    Format.printf "%a" Program.pp_listing program
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Print the compiled RIQ32 code of a benchmark")
    Term.(const action $ bench $ optimized)

let () =
  let doc = "Reusable-instruction issue queue simulator (Hu et al., DATE 2004)" in
  let info = Cmd.info "riq-sim" ~version:"1.0.0" ~doc in
  let cmd =
    Cmd.group info
      [ run_cmd; bench_cmd; sweep_cmd; fig_cmd; serve_cmd; top_cmd; disasm_cmd;
        trace_cmd; pipeview_cmd ]
  in
  exit
    (try Cmd.eval ~catch:false cmd with
    | Failure msg ->
        Printf.eprintf "riq-sim: %s\n" msg;
        2
    | e ->
        Printf.eprintf "riq-sim: internal error, uncaught exception:\n  %s\n"
          (Printexc.to_string e);
        125)
