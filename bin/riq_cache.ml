(* riq-cache: maintenance entry points for the shared result store.

   The store is the engine's content-addressed result cache plus the
   concurrency machinery the serve daemon uses (recency-tracked reads,
   a cooperative maintenance lock, LRU eviction, age-based gc). This
   tool runs the maintenance operations standalone, against the same
   tree local sweeps and daemons share:

     stat  — entry count, total bytes, age span
     gc    — drop entries older than a cutoff
     evict — drop least-recently-used entries down to a byte budget *)

open Cmdliner

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Store root (default \\$RIQ_CACHE_DIR or .riq-cache).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let open_store cache_dir = Riq_svc.Store.open_ ?root:cache_dir ()

let human_bytes b =
  if b >= 1024 * 1024 then Printf.sprintf "%.1f MiB" (float_of_int b /. 1048576.)
  else if b >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int b /. 1024.)
  else Printf.sprintf "%d B" b

(* The machine-readable stat: the legacy stat block plus the same
   contents rendered as a riq-metrics/1 document, so CI asserts on store
   state with the same parser it uses for daemon scrapes. *)
let stat_metrics_json store =
  let module M = Riq_obs.Metrics in
  let s = Riq_svc.Store.stat store in
  let registry = M.create () in
  let gauge name help v = M.set (M.gauge registry ~help name) v in
  gauge "store_entries" "Entries in the shared store" (float_of_int s.Riq_svc.Store.entry_count);
  gauge "store_bytes" "Total bytes across store entries" (float_of_int s.Riq_svc.Store.total_bytes);
  let now = Unix.gettimeofday () in
  (match s.Riq_svc.Store.oldest_mtime with
  | Some t -> gauge "store_oldest_age_seconds" "Age of the least recently used entry" (now -. t)
  | None -> ());
  (match s.Riq_svc.Store.newest_mtime with
  | Some t -> gauge "store_newest_age_seconds" "Age of the most recently used entry" (now -. t)
  | None -> ());
  Riq_util.Json.Obj
    [
      ("stat", Riq_svc.Store.stat_json store);
      ("metrics", M.to_json (M.snapshot registry));
    ]

let stat_cmd =
  let action cache_dir json =
    let store = open_store cache_dir in
    if json then print_endline (Riq_util.Json.to_string (stat_metrics_json store))
    else begin
      let s = Riq_svc.Store.stat store in
      Printf.printf "root      %s\n" (Riq_svc.Store.root store);
      Printf.printf "entries   %d\n" s.Riq_svc.Store.entry_count;
      Printf.printf "bytes     %d (%s)\n" s.Riq_svc.Store.total_bytes
        (human_bytes s.Riq_svc.Store.total_bytes);
      let now = Unix.gettimeofday () in
      (match s.Riq_svc.Store.oldest_mtime with
      | Some t -> Printf.printf "oldest    %.0f s ago\n" (now -. t)
      | None -> ());
      match s.Riq_svc.Store.newest_mtime with
      | Some t -> Printf.printf "newest    %.0f s ago\n" (now -. t)
      | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Entry count, total bytes and age span of the store")
    Term.(const action $ cache_dir_arg $ json_arg)

let gc_cmd =
  let older_than =
    Arg.(required & opt (some float) None & info [ "older-than" ] ~docv:"SECONDS"
           ~doc:"Remove entries whose last use is older than this many seconds; \
                 anything newer is never touched.")
  in
  let action cache_dir json older_than =
    let store = open_store cache_dir in
    let removed, bytes = Riq_svc.Store.gc store ~max_age_seconds:older_than in
    if json then
      print_endline
        (Riq_util.Json.to_string
           (Riq_util.Json.Obj
              [ ("removed", Riq_util.Json.Int removed);
                ("bytes_freed", Riq_util.Json.Int bytes) ]))
    else Printf.printf "removed %d entries, freed %s\n" removed (human_bytes bytes)
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Remove store entries older than a cutoff")
    Term.(const action $ cache_dir_arg $ json_arg $ older_than)

let evict_cmd =
  let budget =
    Arg.(required & opt (some int) None & info [ "budget-mb" ] ~docv:"MB"
           ~doc:"Evict least-recently-used entries until the store fits this budget.")
  in
  let action cache_dir json budget =
    let store = open_store cache_dir in
    let removed = Riq_svc.Store.evict_to_budget store (budget * 1024 * 1024) in
    if json then
      print_endline
        (Riq_util.Json.to_string
           (Riq_util.Json.Obj [ ("removed", Riq_util.Json.Int removed) ]))
    else Printf.printf "evicted %d entries\n" removed
  in
  Cmd.v
    (Cmd.info "evict" ~doc:"Evict least-recently-used entries down to a byte budget")
    Term.(const action $ cache_dir_arg $ json_arg $ budget)

let () =
  let doc = "Maintenance for the shared simulation result store" in
  let info = Cmd.info "riq-cache" ~version:"1.0.0" ~doc in
  exit
    (try Cmd.eval ~catch:false (Cmd.group info [ stat_cmd; gc_cmd; evict_cmd ]) with
    | Failure msg ->
        Printf.eprintf "riq-cache: %s\n" msg;
        2
    | e ->
        Printf.eprintf "riq-cache: internal error, uncaught exception:\n  %s\n"
          (Printexc.to_string e);
        125)
