(* riq-fuzz: differential fuzzer for the reuse mechanism.

   Subcommands:
     run    — generate N seeded programs, run each on the reference
              interpreter and on the out-of-order core with reuse off and
              on (fanned out over the experiment engine's worker pool),
              shrink any divergence and write standalone repros
     gen    — print one generated program's assembly
     replay — re-run one repro (or any assembly file) through the full
              in-process oracle

   The `run` summary on stdout is deterministic — byte-identical across
   runs, worker counts and cache states — so CI can diff two invocations;
   engine statistics and progress go to stderr. *)

open Cmdliner
open Riq_fuzz

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED"
         ~doc:"Base seed; program $(i,i) uses the derived seed $(i,mix(SEED, i)).")

let config_arg =
  let names = String.concat ", " (List.map fst Driver.configs) in
  Arg.(value & opt string "default" & info [ "config"; "c" ] ~docv:"NAME"
         ~doc:(Printf.sprintf "Campaign configuration (%s)." names))

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Number of worker processes (1 = in-process, no fork).")

let get_config name =
  match Driver.config name with Ok c -> c | Error msg -> failwith msg

let run_cmd =
  let count =
    Arg.(value & opt int 500 & info [ "count"; "n" ] ~docv:"N"
           ~doc:"Number of programs to generate and check.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR"
           ~doc:"Write shrunk reproducers as \\$(DIR)/repro-<seed>.s.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the on-disk result cache.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Result cache root (default \\$RIQ_CACHE_DIR or .riq-cache).")
  in
  let serve =
    Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"ADDR"
           ~doc:"Run simulations through a $(b,riq-sim serve) daemon at ADDR (Unix \
                 socket path or host:port) in the batch queue class, instead of \
                 local workers.")
  in
  let action count seed jobs config out no_cache cache_dir serve =
    ignore (get_config config);
    let progress =
      let last = ref (-1) in
      fun (p : Riq_exp.Engine.progress) ->
        if p.Riq_exp.Engine.finished <> !last then begin
          last := p.Riq_exp.Engine.finished;
          Printf.eprintf "\r[fuzz] %d/%d jobs | %d cache hits, %d run, %d failed%!"
            p.Riq_exp.Engine.finished p.Riq_exp.Engine.total
            p.Riq_exp.Engine.cache_hits p.Riq_exp.Engine.executed
            p.Riq_exp.Engine.failures;
          if p.Riq_exp.Engine.finished = p.Riq_exp.Engine.total then
            Printf.eprintf "\n%!"
        end
    in
    let engine =
      match serve with
      | Some addr ->
          (* Fuzz campaigns are background load: submit in the batch
             class so interactive sweeps sharing the daemon stay ahead. *)
          let client =
            Riq_svc.Client.connect ~klass:Riq_svc.Protocol.Batch
              (Riq_svc.Protocol.address_of_string addr)
          in
          Riq_exp.Engine.create ~backend:(Riq_svc.Client.backend client)
            ~on_progress:progress ()
      | None ->
          let cache =
            if no_cache then None else Some (Riq_exp.Cache.open_ ?root:cache_dir ())
          in
          Riq_exp.Engine.create ~workers:jobs ?cache ~on_progress:progress ()
    in
    let r =
      match Driver.run ~engine ~config ~seed ~count () with
      | Ok r -> r
      | Error msg -> failwith msg
    in
    let s = Riq_exp.Engine.stats engine in
    (* Logger (stderr by default), never stdout: the stdout summary must
       stay byte-identical across worker counts and cache states for
       CI's diff. *)
    Riq_obs.Log.info ~scope:"fuzz"
      ~kv:
        [
          ("jobs", Riq_obs.Log.int s.Riq_exp.Engine.jobs);
          ("cache_hits", Riq_obs.Log.int s.Riq_exp.Engine.cache_hits);
          ("deduped", Riq_obs.Log.int s.Riq_exp.Engine.deduped);
          ("executed", Riq_obs.Log.int s.Riq_exp.Engine.executed);
          ("retries", Riq_obs.Log.int s.Riq_exp.Engine.retries);
          ("timeouts", Riq_obs.Log.int s.Riq_exp.Engine.timeouts);
          ("wall_seconds", Riq_obs.Log.float s.Riq_exp.Engine.wall_seconds);
        ]
      "campaign engine summary";
    print_string (Driver.summary_to_string r);
    (match out with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (f : Driver.failure) ->
            let path = Filename.concat dir (Printf.sprintf "repro-%d.s" f.Driver.f_seed) in
            let oc = open_out path in
            output_string oc (Driver.repro_text ~config_name:config f);
            close_out oc;
            Riq_obs.Log.info ~scope:"fuzz"
              ~kv:[ ("path", path) ]
              "wrote reproducer")
          r.Driver.failures);
    if r.Driver.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a differential fuzzing campaign")
    Term.(const action $ count $ seed_arg $ jobs_arg $ config_arg $ out $ no_cache
          $ cache_dir $ serve)

let gen_cmd =
  let index =
    Arg.(value & opt int 0 & info [ "index"; "i" ] ~docv:"I"
           ~doc:"Campaign index: generate the program `run` would check as program I.")
  in
  let action seed config index =
    let _, params = get_config config in
    let prog = Gen.program ~params ~seed:(Gen.derive_seed seed index) () in
    print_string (Prog.render prog)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Print one generated program's assembly")
    Term.(const action $ seed_arg $ config_arg $ index)

let replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Assembly file (typically a repro written by `run --out`).")
  in
  let action file config =
    let cfg, _ = get_config config in
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let program = Riq_asm.Parse.program_exn src in
    match Oracle.check ~cfg program with
    | Ok s ->
        Printf.printf
          "PASS %s: %d committed, %d attempts, %d revokes, %d promotions, %d reused\n"
          file s.Oracle.committed s.Oracle.attempts s.Oracle.revokes
          s.Oracle.promotions s.Oracle.reuse_committed
    | Error f ->
        Printf.printf "FAIL %s: %s\n" file (Oracle.failure_to_string f);
        exit 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-run a reproducer through the in-process oracle")
    Term.(const action $ file $ config_arg)

let () =
  let doc = "Differential fuzzer for the reusable-instruction issue queue" in
  let info = Cmd.info "riq-fuzz" ~version:"1.0.0" ~doc in
  let cmd = Cmd.group info [ run_cmd; gen_cmd; replay_cmd ] in
  exit
    (try Cmd.eval ~catch:false cmd with
    | Failure msg ->
        Printf.eprintf "riq-fuzz: %s\n" msg;
        2
    | e ->
        Printf.eprintf "riq-fuzz: internal error, uncaught exception:\n  %s\n"
          (Printexc.to_string e);
        125)
