(* riq-lint: static bufferability diagnostics for RIQ32 assembly.

   Runs the Riq_analysis pipeline (CFG -> dominators -> natural loops ->
   liveness -> dataflow -> bufferability) over one or more .s files or
   built-in benchmarks and emits per-finding diagnostics with a severity
   (error / warning / info) and, for assembly files, a file:line: prefix
   derived from the assembler's address-to-line map. Passes:

     loop          one info (or warning, when the loop can never promote)
                   per analysed backward transfer: verdict, predicted
                   unroll, prediction, coverage, predicted revoke cause
     aliasing-store    warning: a store in the window may hit a buffered
                       load's bytes (the Section 2.2.3 revoke condition)
     data-dependent-trip  warning: trip count not statically derivable,
                          promotion prediction degraded to marginal
     no-alias      info: store/load pairs proven disjoint by the
                   value-range analysis
     unreachable   warning: statically unreachable code range
     irreducible   warning: retreating edge whose target does not
                   dominate it

   With --expect, `#=` directives embedded in the assembly comments are
   checked; every mismatch is an error-severity diagnostic and the exit
   status is non-zero when any error was emitted:

     #= loops N                      expect N analysed backward transfers
     #= loop LABEL ok                loop headed at LABEL is bufferable
     #= loop LABEL ok promotes       ... and predicted to reach Code Reuse
     #= loop LABEL inner-loop        non-bufferable, with the given reason
                                     (too-large, inner-loop, call-overflow,
                                     callee-loops, indirect, contains-halt,
                                     side-entry, irreducible)
     #= trip LABEL N                 statically derived trip count is N
     #= risk LABEL aliasing-store    the loop carries that risk; expecting
     #= risk LABEL data-dependent-trip   a risk also suppresses its warning
     #= unreachable N                expect N unreachable ranges; a match
                                     suppresses the unreachable warnings

   With --json FILE, every diagnostic (and per-file loop/coverage summary)
   is written as a "riq-lint/1" JSON document for CI gating. With
   --dynamic, the simulator runs the same program on the same queue size
   and the measured per-loop decisions (including revoke-cause counts) are
   printed next to the predictions. *)

open Cmdliner
open Riq_asm
open Riq_analysis
open Riq_util

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Diagnostics.                                                        *)
(* ------------------------------------------------------------------ *)

type severity = Sev_error | Sev_warn | Sev_info

let severity_to_string = function
  | Sev_error -> "error"
  | Sev_warn -> "warning"
  | Sev_info -> "info"

type diag = {
  d_file : string;
  d_line : int option; (* 1-based source line, when the file is assembly *)
  d_sev : severity;
  d_code : string;
  d_msg : string;
}

let diag_to_string d =
  let pos =
    match d.d_line with
    | Some l -> Printf.sprintf "%s:%d" d.d_file l
    | None -> d.d_file
  in
  Printf.sprintf "%s: %s: [%s] %s" pos (severity_to_string d.d_sev) d.d_code d.d_msg

let reason_keyword = function
  | Bufferability.Too_large _ -> "too-large"
  | Inner_transfer _ -> "inner-loop"
  | Call_overflow _ -> "call-overflow"
  | Callee_loops _ -> "callee-loops"
  | Indirect _ -> "indirect"
  | Contains_halt _ -> "contains-halt"
  | Side_entry -> "side-entry"
  | Irreducible -> "irreducible"

let prediction_string = function
  | Bufferability.Promotes -> "promotes"
  | Never_promotes -> "never"
  | Marginal -> "marginal"

let risk_code = function
  | Bufferability.Aliasing_store _ -> "aliasing-store"
  | Bufferability.Data_dependent_trip -> "data-dependent-trip"

(* ------------------------------------------------------------------ *)
(* Expectation directives.                                             *)
(* ------------------------------------------------------------------ *)

type expect =
  | Exp_loops of int
  | Exp_loop of string * string option * string option (* label, verdict, prediction *)
  | Exp_trip of string * int
  | Exp_risk of string * string (* label, risk code *)
  | Exp_unreachable of int

let parse_expects src =
  let out = ref [] in
  String.split_on_char '\n' src
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         match String.index_opt line '#' with
         | Some i
           when i + 1 < String.length line
                && line.[i + 1] = '='
                && (i = 0 || line.[0] = '#') -> (
             let d = String.trim (String.sub line (i + 2) (String.length line - i - 2)) in
             match String.split_on_char ' ' d |> List.filter (fun s -> s <> "") with
             | [ "loops"; n ] -> (
                 match int_of_string_opt n with
                 | Some n -> out := Exp_loops n :: !out
                 | None -> failwith (Printf.sprintf "line %d: bad loop count %S" (lineno + 1) n))
             | [ "trip"; label; n ] -> (
                 match int_of_string_opt n with
                 | Some n -> out := Exp_trip (label, n) :: !out
                 | None -> failwith (Printf.sprintf "line %d: bad trip count %S" (lineno + 1) n))
             | [ "risk"; label; kw ] ->
                 if kw <> "aliasing-store" && kw <> "data-dependent-trip" then
                   failwith
                     (Printf.sprintf
                        "line %d: unknown risk %S (aliasing-store or data-dependent-trip)"
                        (lineno + 1) kw);
                 out := Exp_risk (label, kw) :: !out
             | [ "unreachable"; n ] -> (
                 match int_of_string_opt n with
                 | Some n -> out := Exp_unreachable n :: !out
                 | None ->
                     failwith
                       (Printf.sprintf "line %d: bad unreachable count %S" (lineno + 1) n))
             | "loop" :: label :: rest ->
                 let verdict, pred =
                   match rest with
                   | [] -> (None, None)
                   | [ v ] -> (Some v, None)
                   | [ v; p ] -> (Some v, Some p)
                   | _ -> failwith (Printf.sprintf "line %d: bad directive %S" (lineno + 1) d)
                 in
                 out := Exp_loop (label, verdict, pred) :: !out
             | _ -> failwith (Printf.sprintf "line %d: bad directive %S" (lineno + 1) d))
         | _ -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Lint passes over one report.                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  c_name : string;
  c_lines : (int, int) Hashtbl.t option; (* pc -> source line, assembly only *)
  c_program : Program.t;
  c_report : Bufferability.report;
}

let line_of ctx pc = Option.bind ctx.c_lines (fun tbl -> Hashtbl.find_opt tbl pc)

let mk ctx ?pc sev code fmt =
  Printf.ksprintf
    (fun msg ->
      {
        d_file = ctx.c_name;
        d_line = Option.bind pc (line_of ctx);
        d_sev = sev;
        d_code = code;
        d_msg = msg;
      })
    fmt

let pass_loops ctx =
  List.map
    (fun (l : Bufferability.loop_report) ->
      let cov =
        match Bufferability.coverage_of ctx.c_report ~tail:l.tail with
        | Some c -> Printf.sprintf " coverage %.1f%%" c
        | None -> ""
      in
      let trip =
        match l.trip with Some t -> Printf.sprintf " trip %d" t | None -> ""
      in
      let cause =
        match l.predicted_cause with
        | Some c -> ", predicted revoke: " ^ Bufferability.cause_to_string c
        | None -> ""
      in
      match l.verdict with
      | Ok () ->
          mk ctx ~pc:l.tail Sev_info "loop"
            "loop %08x..%08x span %d depth %d%s%s: bufferable, unroll %d (%s)%s%s%s"
            l.head l.tail l.span l.depth
            (if l.innermost then " innermost" else "")
            trip l.unroll
            (prediction_string l.prediction)
            cov
            (if l.nblt_risk then " [nblt-risk]" else "")
            cause
      | Error r ->
          let sev = if Bufferability.hard_reject r then Sev_warn else Sev_info in
          mk ctx ~pc:l.tail sev "loop"
            "loop %08x..%08x span %d depth %d%s: non-bufferable, %s (%s)%s" l.head
            l.tail l.span l.depth trip
            (Bufferability.reason_to_string r)
            (prediction_string l.prediction)
            cause)
    ctx.c_report.Bufferability.loops

let pass_risks ctx ~suppressed =
  List.concat_map
    (fun (l : Bufferability.loop_report) ->
      List.filter_map
        (fun r ->
          if Hashtbl.mem suppressed (l.Bufferability.head, risk_code r) then None
          else
            Some
              (match r with
              | Bufferability.Aliasing_store { store; load } ->
                  mk ctx ~pc:store Sev_warn "aliasing-store"
                    "store %08x may hit buffered load %08x while loop %08x..%08x buffers \
                     (Section 2.2.3 revoke)"
                    store load l.head l.tail
              | Bufferability.Data_dependent_trip ->
                  mk ctx ~pc:l.tail Sev_warn "data-dependent-trip"
                    "trip count of loop %08x..%08x is data-dependent; promotion \
                     prediction degraded to marginal"
                    l.head l.tail))
        l.Bufferability.risks)
    ctx.c_report.Bufferability.loops

let pass_no_alias ctx =
  List.filter_map
    (fun (l : Bufferability.loop_report) ->
      match l.Bufferability.no_alias with
      | [] -> None
      | claims ->
          Some
            (mk ctx ~pc:l.tail Sev_info "no-alias"
               "loop %08x..%08x: %d store/load pair%s proven disjoint" l.head l.tail
               (List.length claims)
               (if List.length claims = 1 then "" else "s")))
    ctx.c_report.Bufferability.loops

let pass_unreachable ctx =
  List.map
    (fun (first, last) ->
      mk ctx ~pc:first Sev_warn "unreachable"
        "unreachable code %08x..%08x (%d instruction%s)" first last
        ((last - first) / 4 + 1)
        (if last = first then "" else "s"))
    ctx.c_report.Bufferability.unreachable

let pass_irreducible ctx =
  List.map
    (fun (s, d) ->
      mk ctx Sev_warn "irreducible" "irreducible edge B%d -> B%d" s d)
    ctx.c_report.Bufferability.irreducible_edges

(* Expectation check: every mismatch is an error diagnostic; satisfied
   [risk]/[unreachable] expectations suppress the matching warnings. *)
let check_expects ctx expects =
  let report = ctx.c_report in
  let errors = ref [] in
  let err ?pc fmt =
    Printf.ksprintf (fun m -> errors := mk ctx ?pc Sev_error "expect" "%s" m :: !errors) fmt
  in
  let suppressed_risks = Hashtbl.create 4 in
  let suppress_unreachable = ref false in
  let find_loop label k =
    match Program.address_of ctx.c_program label with
    | None -> err "no such label %S" label
    | Some addr -> (
        match
          List.find_opt
            (fun l -> l.Bufferability.head = addr)
            report.Bufferability.loops
        with
        | None -> err "no analysed loop headed at %S (%08x)" label addr
        | Some l -> k l)
  in
  List.iter
    (function
      | Exp_loops n ->
          let got = List.length report.Bufferability.loops in
          if got <> n then err "expected %d loops, analysed %d" n got
      | Exp_loop (label, verdict, pred) ->
          find_loop label (fun l ->
              (match verdict with
              | None -> ()
              | Some v ->
                  let got =
                    match l.Bufferability.verdict with
                    | Ok () -> "ok"
                    | Error r -> reason_keyword r
                  in
                  let v = if v = "bufferable" then "ok" else v in
                  if got <> v then
                    err ~pc:l.Bufferability.tail "loop %S: expected %s, got %s" label v
                      got);
              match pred with
              | None -> ()
              | Some p ->
                  let got = prediction_string l.Bufferability.prediction in
                  if got <> p then
                    err ~pc:l.Bufferability.tail "loop %S: expected prediction %s, got %s"
                      label p got)
      | Exp_trip (label, n) ->
          find_loop label (fun l ->
              match l.Bufferability.trip with
              | Some t when t = n -> ()
              | Some t ->
                  err ~pc:l.Bufferability.tail "loop %S: expected trip %d, derived %d"
                    label n t
              | None ->
                  err ~pc:l.Bufferability.tail
                    "loop %S: expected trip %d, none derived" label n)
      | Exp_risk (label, kw) ->
          find_loop label (fun l ->
              if List.exists (fun r -> risk_code r = kw) l.Bufferability.risks then
                Hashtbl.replace suppressed_risks (l.Bufferability.head, kw) ()
              else
                err ~pc:l.Bufferability.tail "loop %S: expected risk %s not flagged"
                  label kw)
      | Exp_unreachable n ->
          let got = List.length report.Bufferability.unreachable in
          if got = n then suppress_unreachable := true
          else err "expected %d unreachable ranges, found %d" n got)
    expects;
  (List.rev !errors, suppressed_risks, !suppress_unreachable)

(* ------------------------------------------------------------------ *)
(* Dynamic comparison.                                                 *)
(* ------------------------------------------------------------------ *)

let print_dynamic cfg program =
  let open Riq_core in
  let p = Processor.create cfg program in
  (match Processor.run p with
  | Processor.Halted -> ()
  | Cycle_limit -> failwith "cycle limit hit");
  let s = Processor.stats p in
  Printf.printf "  dynamic: %d committed, %d from reuse (%.1f%% coverage)\n"
    s.Processor.committed s.Processor.reuse_committed
    (if s.Processor.committed = 0 then 0.
     else
       100. *. float_of_int s.Processor.reuse_committed /. float_of_int s.Processor.committed);
  List.iter
    (fun d ->
      Printf.printf
        "  dynamic loop %08x..%08x span %3d: %d detections (%d nblt-filtered), %d attempts, %d revokes (inner %d, left %d, overflow %d, mispredict %d), %d promotions, %d reused\n"
        d.Processor.ld_head d.Processor.ld_tail d.Processor.ld_span d.Processor.ld_detections
        d.Processor.ld_nblt_filtered d.Processor.ld_attempts d.Processor.ld_revokes
        d.Processor.ld_rv_inner d.Processor.ld_rv_left d.Processor.ld_rv_overflow
        d.Processor.ld_rv_mispredict d.Processor.ld_promotions d.Processor.ld_reuse_committed)
    (Processor.loop_decisions p)

(* ------------------------------------------------------------------ *)
(* JSON emitter.                                                       *)
(* ------------------------------------------------------------------ *)

let schema = "riq-lint/1"

let diag_json d =
  Json.Obj
    [
      ("file", Json.String d.d_file);
      ("line", match d.d_line with Some l -> Json.Int l | None -> Json.Null);
      ("severity", Json.String (severity_to_string d.d_sev));
      ("code", Json.String d.d_code);
      ("message", Json.String d.d_msg);
    ]

let emit_json path ~iq results =
  let count sev =
    List.fold_left
      (fun acc (_, _, diags) ->
        acc + List.length (List.filter (fun d -> d.d_sev = sev) diags))
      0 results
  in
  Json.to_file path
    (Json.Obj
       [
         ("schema", Json.String schema);
         ("revision", Json.String Riq_exp.Revision.stamp);
         ("iq_size", Json.Int iq);
         ( "files",
           Json.List
             (List.map
                (fun (name, (report : Bufferability.report), diags) ->
                  Json.Obj
                    [
                      ("name", Json.String name);
                      ("loops", Json.Int (List.length report.Bufferability.loops));
                      ( "coverage",
                        match report.Bufferability.coverage with
                        | Some c -> Json.Float c
                        | None -> Json.Null );
                      ("diagnostics", Json.List (List.map diag_json diags));
                    ])
                results) );
         ("errors", Json.Int (count Sev_error));
         ("warnings", Json.Int (count Sev_warn));
         ("infos", Json.Int (count Sev_info));
       ])

(* ------------------------------------------------------------------ *)

let lint_one ~iq ~multi ~expect ~dynamic (name, src_opt, lines_opt, program) =
  let report = Bufferability.analyze ~multi_iter:multi ~iq_size:iq program in
  let ctx = { c_name = name; c_lines = lines_opt; c_program = program; c_report = report } in
  let expect_diags, suppressed_risks, suppress_unreachable =
    match (expect, src_opt) with
    | false, _ -> ([], Hashtbl.create 0, false)
    | true, None ->
        failwith "--expect requires assembly files (directives live in comments)"
    | true, Some src -> check_expects ctx (parse_expects src)
  in
  (* A risk the directives expect is acknowledged, not news. *)
  let risk_diags = pass_risks ctx ~suppressed:suppressed_risks in
  let diags =
    pass_loops ctx @ risk_diags @ pass_no_alias ctx
    @ (if suppress_unreachable then [] else pass_unreachable ctx)
    @ pass_irreducible ctx @ expect_diags
  in
  Printf.printf "%s: iq %d, %d loop%s analysed%s\n" name iq
    (List.length report.Bufferability.loops)
    (if List.length report.Bufferability.loops = 1 then "" else "s")
    (if report.Bufferability.exact_trips then "" else " (some trip counts estimated)");
  List.iter (fun d -> Printf.printf "  %s\n" (diag_to_string d)) diags;
  (match report.Bufferability.coverage with
  | Some c -> Printf.printf "  predicted reuse coverage %.1f%% of committed instructions\n" c
  | None -> ());
  if dynamic then
    print_dynamic (Riq_ooo.Config.with_iq_size Riq_ooo.Config.reuse iq) program;
  (name, report, diags)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("riq-lint: " ^ s); exit 2) fmt

let main files benches iq single expect dynamic json_out =
  if expect && benches <> [] then
    die "--expect requires assembly files (directives live in comments), not --bench";
  let jobs =
    List.map
      (fun path ->
        let src = read_file path in
        match Parse.program_with_lines src with
        | Ok (program, lines) -> (Filename.basename path, Some src, Some lines, program)
        | Error msg -> die "%s: %s" path msg)
      files
    @ List.map
        (fun b ->
          match
            List.find_opt
              (fun w -> w.Riq_workloads.Workloads.name = b)
              Riq_workloads.Workloads.all
          with
          | Some w -> (b, None, None, Riq_workloads.Workloads.program w)
          | None ->
              die "unknown benchmark %S (try one of: %s, or all)" b
                (String.concat ", "
                   (List.map (fun w -> w.Riq_workloads.Workloads.name) Riq_workloads.Workloads.all)))
        (if benches = [ "all" ] then
           List.map (fun w -> w.Riq_workloads.Workloads.name) Riq_workloads.Workloads.all
         else benches)
  in
  if jobs = [] then begin
    prerr_endline "riq-lint: nothing to do (give .s files or --bench)";
    exit 2
  end;
  (* Lint every file even after one fails: the error count, not a
     short-circuiting fold, decides the exit status. *)
  let results =
    List.map
      (fun job ->
        try lint_one ~iq ~multi:(not single) ~expect ~dynamic job
        with Failure msg ->
          let name, _, _, _ = job in
          die "%s: %s" name msg)
      jobs
  in
  (match json_out with Some path -> emit_json path ~iq results | None -> ());
  let count sev =
    List.fold_left
      (fun acc (_, _, diags) ->
        acc + List.length (List.filter (fun d -> d.d_sev = sev) diags))
      0 results
  in
  let errors = count Sev_error and warnings = count Sev_warn in
  if errors > 0 || warnings > 0 then
    Printf.printf "%d error%s, %d warning%s\n" errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s");
  if errors > 0 then exit 1

let cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE.s" ~doc:"RIQ32 assembly files to lint.")
  in
  let benches =
    Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME"
           ~doc:"Built-in benchmark to lint ($(b,all) for every one).")
  in
  let iq =
    Arg.(value & opt int 32 & info [ "iq" ] ~docv:"N" ~doc:"Issue queue size to lint against.")
  in
  let single =
    Arg.(value & flag & info [ "single-iter" ]
           ~doc:"Model single-iteration buffering (the paper's strategy 1).")
  in
  let expect =
    Arg.(value & flag & info [ "expect" ]
           ~doc:"Check $(b,#=) expectation directives; exit non-zero on mismatch.")
  in
  let dynamic =
    Arg.(value & flag & info [ "dynamic" ]
           ~doc:"Also run the simulator and print the measured per-loop decisions.")
  in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write all diagnostics as a $(b,riq-lint/1) JSON document to $(docv).")
  in
  Cmd.v
    (Cmd.info "riq-lint" ~version:"%%VERSION%%"
       ~doc:"Static loop-bufferability lint for the reusable issue queue")
    Term.(const main $ files $ benches $ iq $ single $ expect $ dynamic $ json_out)

let () = exit (Cmd.eval cmd)
