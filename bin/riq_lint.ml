(* riq-lint: static bufferability report for RIQ32 assembly.

   Runs the Riq_analysis pipeline (CFG -> dominators -> natural loops ->
   liveness -> bufferability) over one or more .s files or built-in
   benchmarks and prints, for every backward transfer the dynamic detector
   would consider, whether the loop is bufferable, why not, the predicted
   automatic unroll factor and the predicted reuse coverage.

   With --expect, `#=` directives embedded in the assembly comments are
   checked and the exit status reports mismatches (used by `dune build
   @lint`):

     #= loops N                      expect N analysed backward transfers
     #= loop LABEL ok                loop headed at LABEL is bufferable
     #= loop LABEL ok promotes       ... and predicted to reach Code Reuse
     #= loop LABEL inner-loop        non-bufferable, with the given reason
                                     (too-large, inner-loop, call-overflow,
                                     callee-loops, indirect, contains-halt,
                                     side-entry, irreducible)

   With --dynamic, the simulator runs the same program on the same queue
   size and the measured per-loop decisions and reuse coverage are printed
   next to the predictions. *)

open Cmdliner
open Riq_asm
open Riq_analysis

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let reason_keyword = function
  | Bufferability.Too_large _ -> "too-large"
  | Inner_transfer _ -> "inner-loop"
  | Call_overflow _ -> "call-overflow"
  | Callee_loops _ -> "callee-loops"
  | Indirect _ -> "indirect"
  | Contains_halt _ -> "contains-halt"
  | Side_entry -> "side-entry"
  | Irreducible -> "irreducible"

let prediction_string = function
  | Bufferability.Promotes -> "promotes"
  | Never_promotes -> "never"
  | Marginal -> "marginal"

let print_loop (report : Bufferability.report) (l : Bufferability.loop_report) =
  let cov =
    match Bufferability.coverage_of report ~tail:l.tail with
    | Some c -> Printf.sprintf " coverage %.1f%%" c
    | None -> ""
  in
  let trip =
    match l.trip with Some t -> Printf.sprintf " trip %d" t | None -> ""
  in
  match l.verdict with
  | Ok () ->
      Printf.printf
        "  loop %08x..%08x span %3d depth %d%s%s  BUFFERABLE unroll %d (%s)%s%s\n"
        l.head l.tail l.span l.depth
        (if l.innermost then " innermost" else "")
        trip l.unroll
        (prediction_string l.prediction)
        cov
        (if l.nblt_risk then " [nblt-risk]" else "")
  | Error r ->
      Printf.printf "  loop %08x..%08x span %3d depth %d%s  NON-BUFFERABLE: %s (%s)\n"
        l.head l.tail l.span l.depth trip
        (Bufferability.reason_to_string r)
        (prediction_string l.prediction)

(* ------------------------------------------------------------------ *)
(* Expectation directives.                                             *)
(* ------------------------------------------------------------------ *)

type expect =
  | Exp_loops of int
  | Exp_loop of string * string option * string option (* label, verdict, prediction *)

let parse_expects src =
  let out = ref [] in
  String.split_on_char '\n' src
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         match String.index_opt line '#' with
         | Some i
           when i + 1 < String.length line
                && line.[i + 1] = '='
                && (i = 0 || line.[0] = '#') -> (
             let d = String.trim (String.sub line (i + 2) (String.length line - i - 2)) in
             match String.split_on_char ' ' d |> List.filter (fun s -> s <> "") with
             | [ "loops"; n ] -> (
                 match int_of_string_opt n with
                 | Some n -> out := Exp_loops n :: !out
                 | None -> failwith (Printf.sprintf "line %d: bad loop count %S" (lineno + 1) n))
             | "loop" :: label :: rest ->
                 let verdict, pred =
                   match rest with
                   | [] -> (None, None)
                   | [ v ] -> (Some v, None)
                   | [ v; p ] -> (Some v, Some p)
                   | _ -> failwith (Printf.sprintf "line %d: bad directive %S" (lineno + 1) d)
                 in
                 out := Exp_loop (label, verdict, pred) :: !out
             | _ -> failwith (Printf.sprintf "line %d: bad directive %S" (lineno + 1) d))
         | _ -> ());
  List.rev !out

let check_expects ~name program (report : Bufferability.report) expects =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (function
      | Exp_loops n ->
          let got = List.length report.Bufferability.loops in
          if got <> n then fail "expected %d loops, analysed %d" n got
      | Exp_loop (label, verdict, pred) -> (
          match Program.address_of program label with
          | None -> fail "no such label %S" label
          | Some addr -> (
              match
                List.find_opt
                  (fun l -> l.Bufferability.head = addr)
                  report.Bufferability.loops
              with
              | None -> fail "no analysed loop headed at %S (%08x)" label addr
              | Some l ->
                  (match verdict with
                  | None -> ()
                  | Some v ->
                      let got =
                        match l.Bufferability.verdict with
                        | Ok () -> "ok"
                        | Error r -> reason_keyword r
                      in
                      let v = if v = "bufferable" then "ok" else v in
                      if got <> v then fail "loop %S: expected %s, got %s" label v got);
                  match pred with
                  | None -> ()
                  | Some p ->
                      let got = prediction_string l.Bufferability.prediction in
                      if got <> p then
                        fail "loop %S: expected prediction %s, got %s" label p got)))
    expects;
  List.iter (fun f -> Printf.printf "  EXPECT FAILED [%s]: %s\n" name f) (List.rev !failures);
  !failures = []

(* ------------------------------------------------------------------ *)
(* Dynamic comparison.                                                 *)
(* ------------------------------------------------------------------ *)

let run_dynamic cfg program =
  let p = Riq_core.Processor.create cfg program in
  (match Riq_core.Processor.run p with
  | Riq_core.Processor.Halted -> ()
  | Cycle_limit -> failwith "cycle limit hit");
  p

let print_dynamic cfg program =
  let open Riq_core in
  let p = run_dynamic cfg program in
  let s = Processor.stats p in
  Printf.printf "  dynamic: %d committed, %d from reuse (%.1f%% coverage)\n"
    s.Processor.committed s.Processor.reuse_committed
    (if s.Processor.committed = 0 then 0.
     else
       100. *. float_of_int s.Processor.reuse_committed /. float_of_int s.Processor.committed);
  List.iter
    (fun d ->
      Printf.printf
        "  dynamic loop %08x..%08x span %3d: %d detections (%d nblt-filtered), %d attempts, %d revokes (%d nblt), %d promotions, %d reused\n"
        d.Processor.ld_head d.Processor.ld_tail d.Processor.ld_span d.Processor.ld_detections
        d.Processor.ld_nblt_filtered d.Processor.ld_attempts d.Processor.ld_revokes
        d.Processor.ld_nblt_registered d.Processor.ld_promotions d.Processor.ld_reuse_committed)
    (Processor.loop_decisions p)

(* ------------------------------------------------------------------ *)

let lint ~iq ~multi ~expect ~dynamic ~name ~src_opt program =
  let report = Bufferability.analyze ~multi_iter:multi ~iq_size:iq program in
  Printf.printf "%s: iq %d, %d loop%s analysed%s\n" name iq
    (List.length report.Bufferability.loops)
    (if List.length report.Bufferability.loops = 1 then "" else "s")
    (if report.Bufferability.exact_trips then "" else " (some trip counts estimated)");
  List.iter (print_loop report) report.Bufferability.loops;
  (match report.Bufferability.coverage with
  | Some c -> Printf.printf "  predicted reuse coverage %.1f%% of committed instructions\n" c
  | None -> ());
  List.iter
    (fun (s, d) -> Printf.printf "  warning: irreducible edge B%d -> B%d\n" s d)
    report.Bufferability.irreducible_edges;
  if dynamic then
    print_dynamic
      (Riq_ooo.Config.with_iq_size Riq_ooo.Config.reuse iq)
      program;
  if expect then
    match src_opt with
    | None -> failwith "--expect requires assembly files (directives live in comments)"
    | Some src -> check_expects ~name program report (parse_expects src)
  else true

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("riq-lint: " ^ s); exit 2) fmt

let main files benches iq single expect dynamic =
  if expect && benches <> [] then
    die "--expect requires assembly files (directives live in comments), not --bench";
  let jobs =
    List.map
      (fun path ->
        let src = read_file path in
        let program =
          try Parse.program_exn src with Failure msg -> die "%s: %s" path msg
        in
        (Filename.basename path, Some src, program))
      files
    @ List.map
        (fun b ->
          match
            List.find_opt
              (fun w -> w.Riq_workloads.Workloads.name = b)
              Riq_workloads.Workloads.all
          with
          | Some w -> (b, None, Riq_workloads.Workloads.program w)
          | None ->
              die "unknown benchmark %S (try one of: %s, or all)" b
                (String.concat ", "
                   (List.map (fun w -> w.Riq_workloads.Workloads.name) Riq_workloads.Workloads.all)))
        (if benches = [ "all" ] then
           List.map (fun w -> w.Riq_workloads.Workloads.name) Riq_workloads.Workloads.all
         else benches)
  in
  if jobs = [] then begin
    prerr_endline "riq-lint: nothing to do (give .s files or --bench)";
    exit 2
  end;
  let ok =
    List.fold_left
      (fun acc (name, src_opt, program) ->
        (try lint ~iq ~multi:(not single) ~expect ~dynamic ~name ~src_opt program
         with Failure msg -> die "%s: %s" name msg)
        && acc)
      true jobs
  in
  if not ok then exit 1

let cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE.s" ~doc:"RIQ32 assembly files to lint.")
  in
  let benches =
    Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME"
           ~doc:"Built-in benchmark to lint ($(b,all) for every one).")
  in
  let iq =
    Arg.(value & opt int 32 & info [ "iq" ] ~docv:"N" ~doc:"Issue queue size to lint against.")
  in
  let single =
    Arg.(value & flag & info [ "single-iter" ]
           ~doc:"Model single-iteration buffering (the paper's strategy 1).")
  in
  let expect =
    Arg.(value & flag & info [ "expect" ]
           ~doc:"Check $(b,#=) expectation directives; exit non-zero on mismatch.")
  in
  let dynamic =
    Arg.(value & flag & info [ "dynamic" ]
           ~doc:"Also run the simulator and print the measured per-loop decisions.")
  in
  Cmd.v
    (Cmd.info "riq-lint" ~version:"%%VERSION%%"
       ~doc:"Static loop-bufferability lint for the reusable issue queue")
    Term.(const main $ files $ benches $ iq $ single $ expect $ dynamic)

let () = exit (Cmd.eval cmd)
