# A small loop that calls a procedure too large to buffer alongside it:
# the issue queue fills while the callee streams in, buffering is revoked
# (Section 2.2.2), and the loop registers in the non-bufferable loop table.
#
#= loops 1
#= loop loop call-overflow never

start:
    addi r16, r0, 0
loop:
    jal  work
    addi r16, r16, 1
    slti r2, r16, 200
    bne  r2, r0, loop
    halt

work:
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    jr   r31
