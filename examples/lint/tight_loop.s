# A tight counted loop: the bread-and-butter case for the reusable issue
# queue. Small span, exact trip count, no calls — bufferable, and with a
# trip count far above the automatic unroll factor the buffering is
# predicted to reach Code Reuse.
#
#= loops 1
#= loop loop ok promotes

start:
    addi r16, r0, 0         # i = 0
    addi r17, r0, 0         # acc = 0
loop:
    add  r17, r17, r16      # acc += i
    addi r16, r16, 1
    slti r2, r16, 500
    bne  r2, r0, loop
    halt
