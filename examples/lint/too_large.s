# A loop whose static span exceeds the 32-entry issue queue: the dynamic
# detector rejects it at decode time (Detector.Too_large), so the analyzer
# must report too-large and predict that it never promotes.
#
#= loops 1
#= loop loop too-large never

start:
    addi r16, r0, 0
loop:
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r3, r3, 1
    addi r4, r4, 2
    addi r5, r5, 3
    addi r6, r6, 4
    addi r7, r7, 5
    addi r8, r8, 6
    addi r9, r9, 7
    addi r10, r10, 8
    addi r16, r16, 1
    slti r2, r16, 100
    bne  r2, r0, loop
    halt
