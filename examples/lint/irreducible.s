# Irreducible control flow: the backward branch targets a block that does
# not dominate it (the "loop" has a second entry from above). The analyzer
# must reject it as irreducible rather than mis-detecting a natural loop.
#
#= loops 1
#= loop second_entry irreducible

start:
    addi r2, r0, 1
    beq  r2, r0, body       # one entry jumps past the "header"
second_entry:
    addi r3, r3, 1
    j    body
body:
    addi r3, r3, 2
    slti r4, r3, 10
    bne  r4, r0, second_entry
    halt
