# Unreachable code and data-fact directives. The block after the
# unconditional jump can never execute; riq-lint warns about it from the
# CFG reachability bits unless the `#= unreachable` directive acknowledges
# it. The loop walks two disjoint arrays with bumped pointers, so the
# value-range analysis proves every store/load pair disjoint (no
# aliasing-store risk), and the countdown gives an exact trip count.
#
#= loops 1
#= loop copy ok promotes
#= trip copy 50
#= unreachable 1

.space src 64
.space dst 64

start:
    la   r8, src
    la   r9, dst
    addi r16, r0, 50
copy:
    lw   r5, 0(r8)
    sw   r5, 0(r9)
    addi r8, r8, 4
    addi r9, r9, 4
    addi r16, r16, -1
    bgtz r16, copy
    j    done

dead:                       # never reached: no fallthrough, no branch here
    addi r3, r0, 1
    addi r3, r3, 1

done:
    halt
