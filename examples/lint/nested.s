# A two-deep loop nest. The inner loop is bufferable; the outer loop is
# not, because the inner loop's backward branch decodes inside its window
# (Section 2.2.3: an inner loop revokes the outer loop's buffering).
#
#= loops 2
#= loop inner ok promotes
#= loop outer inner-loop

start:
    addi r16, r0, 0         # i
outer:
    addi r17, r0, 0         # j
inner:
    add  r18, r17, r16
    addi r17, r17, 1
    slti r2, r17, 40
    bne  r2, r0, inner
    addi r16, r16, 1
    slti r2, r16, 20
    bne  r2, r0, outer
    halt
