(* Loop gating through the tracer: drive the processor cycle by cycle on a
   small nested loop with a ring-buffer tracer attached and replay the
   recorded events as a readable transition log — loop detection, the NBLT
   filtering the non-bufferable outer loop, "loop-buffering" and
   "code-reuse" spans (Figure 2 of the paper), revokes and pipeline
   flushes. The same events, streamed with [riq-sim trace BENCH --out],
   render as named spans in Perfetto.

   Run with: dune exec examples/trace_gating.exe *)

open Riq_asm
open Riq_obs
open Riq_ooo
open Riq_core

(* An inner loop (bufferable) inside an outer loop (non-bufferable: the
   inner loop is detected during its buffering), as in Figure 4. *)
let source = {|
start:
    li   r20, 0            # outer index
outer:
    li   r21, 0            # inner index
    li   r22, 40           # inner trip count
    la   r23, data
inner:
    sll  r2, r21, 2
    add  r2, r2, r23
    lw   r3, 0(r2)
    add  r24, r24, r3
    addi r21, r21, 1
    slt  r4, r21, r22
    bne  r4, r0, inner
    addi r20, r20, 1
    slti r5, r20, 12
    bne  r5, r0, outer
    halt
.space data 40
|}

let arg_str args name =
  match List.assoc_opt name args with
  | Some (Tracer.Int v) -> Printf.sprintf "%s=%#x" name v
  | Some (Tracer.Float v) -> Printf.sprintf "%s=%g" name v
  | Some (Tracer.Str v) -> Printf.sprintf "%s=%s" name v
  | None -> ""

let () =
  let program = Parse.program_exn source in
  let tracer = Tracer.ring ~capacity:65536 () in
  let p = Processor.create ~tracer Config.reuse program in
  while (not (Processor.halted p)) && Processor.cycles p < 100_000 do
    Processor.step_cycle p
  done;
  (* Replay the reuse-engine events as the old ad-hoc printer did — but
     from the structured record, so the log and a Perfetto trace can never
     disagree. *)
  let shown = ref 0 in
  List.iter
    (fun e ->
      let describe =
        match (e.Tracer.name, e.Tracer.ph) with
        | "loop-detected", _ ->
            Some (Printf.sprintf "loop detected       %s %s" (arg_str e.Tracer.args "head")
                    (arg_str e.Tracer.args "tail"))
        | "nblt-suppress", _ -> Some "detection suppressed by the NBLT"
        | "nblt-register", _ ->
            Some (Printf.sprintf "NBLT registered     %s" (arg_str e.Tracer.args "tail"))
        | "loop-buffering", Tracer.Begin ->
            Some (Printf.sprintf "span open           loop-buffering %s %s"
                    (arg_str e.Tracer.args "head") (arg_str e.Tracer.args "tail"))
        | "loop-buffering", Tracer.End -> Some "span close          loop-buffering"
        | "code-reuse", Tracer.Begin ->
            let iters =
              match List.assoc_opt "iters_buffered" e.Tracer.args with
              | Some (Tracer.Int v) -> v
              | _ -> 0
            in
            Some (Printf.sprintf
                    "span open           code-reuse (%d iterations buffered; front-end gated)"
                    iters)
        | "code-reuse", Tracer.End -> Some "span close          code-reuse"
        | "revoke", _ -> Some "buffering revoked"
        | _ -> None
      in
      match describe with
      | Some line when !shown < 60 ->
          incr shown;
          Printf.printf "cycle %6d  %s\n" e.Tracer.ts line
      | _ -> ())
    (Tracer.events tracer);
  let st = Processor.stats p in
  Printf.printf
    "\nfinished: %d cycles, %d instructions, gated %.1f%% of cycles\n"
    st.Processor.cycles st.Processor.committed
    (100. *. st.Processor.gated_fraction);
  Printf.printf
    "buffering: %d attempts, %d revokes (NBLT filtered %d re-detections), %d promotions\n"
    st.Processor.buffer_attempts st.Processor.revokes
    (Processor.reuse_state p).Reuse_state.n_nblt_filtered st.Processor.promotions;
  Printf.printf "tracer: %d events recorded (%s)\n" (Tracer.recorded tracer)
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) (Tracer.counts tracer)))
