open Riq_isa
open Riq_asm
open Riq_interp

let checkf = Alcotest.(check (float 0.))

(* ---- Semantics ---- *)

let test_alu () =
  Alcotest.(check int) "add wrap" (-2147483648) (Semantics.alu Insn.Add 0x7FFFFFFF 1);
  Alcotest.(check int) "sub" (-1) (Semantics.alu Insn.Sub 1 2);
  Alcotest.(check int) "and" 0b1000 (Semantics.alu Insn.And 0b1100 0b1010);
  Alcotest.(check int) "or" 0b1110 (Semantics.alu Insn.Or 0b1100 0b1010);
  Alcotest.(check int) "xor" 0b0110 (Semantics.alu Insn.Xor 0b1100 0b1010);
  Alcotest.(check int) "nor" (-15) (Semantics.alu Insn.Nor 0b1100 0b1010);
  Alcotest.(check int) "slt signed" 1 (Semantics.alu Insn.Slt (-1) 0);
  Alcotest.(check int) "sltu unsigned" 0 (Semantics.alu Insn.Sltu (-1) 0);
  Alcotest.(check int) "sltu small" 1 (Semantics.alu Insn.Sltu 0 (-1))

let test_shift () =
  Alcotest.(check int) "sll" 16 (Semantics.shift Insn.Sll 1 4);
  Alcotest.(check int) "sll wrap" 0 (Semantics.shift Insn.Sll 0x80000000 1);
  Alcotest.(check int) "srl of negative" 0x7FFFFFFF (Semantics.shift Insn.Srl (-1) 1);
  Alcotest.(check int) "sra of negative" (-1) (Semantics.shift Insn.Sra (-1) 4);
  Alcotest.(check int) "amount masked" 2 (Semantics.shift Insn.Sll 1 33)

let test_muldiv () =
  Alcotest.(check int) "mul" 12 (Semantics.mul 3 4);
  Alcotest.(check int) "mul wrap" 0 (Semantics.mul 0x10000 0x10000);
  Alcotest.(check int) "div" (-2) (Semantics.div 7 (-3));
  Alcotest.(check int) "div truncates toward zero" (-2) (Semantics.div (-7) 3);
  Alcotest.(check int) "div by zero" 0 (Semantics.div 5 0)

let test_fpu_single () =
  (* 0.1 is not representable; single and double rounding differ. *)
  let r = Semantics.fpu Insn.Fadd 0.1 0.2 in
  checkf "single precision result"
    (Int32.float_of_bits (Int32.bits_of_float (Semantics.to_single 0.1 +. Semantics.to_single 0.2)))
    r;
  checkf "fabs" 2.5 (Semantics.fpu Insn.Fabs (-2.5) 0.);
  checkf "fneg" (-3.) (Semantics.fpu Insn.Fneg 3. 0.);
  checkf "fsqrt" 3. (Semantics.fpu Insn.Fsqrt 9. 0.);
  Alcotest.(check int) "flt" 1 (Semantics.fcmp Insn.Flt 1. 2.);
  Alcotest.(check int) "fle eq" 1 (Semantics.fcmp Insn.Fle 2. 2.);
  Alcotest.(check int) "feq" 0 (Semantics.fcmp Insn.Feq 1. 2.)

let test_cvt () =
  checkf "int to float" 42. (Semantics.cvt_s_w 42);
  Alcotest.(check int) "float to int truncates" 3 (Semantics.cvt_w_s 3.9);
  Alcotest.(check int) "negative truncates" (-3) (Semantics.cvt_w_s (-3.9));
  Alcotest.(check int) "nan" 0 (Semantics.cvt_w_s Float.nan);
  Alcotest.(check int) "saturate high" 0x7FFFFFFF (Semantics.cvt_w_s 1e20);
  Alcotest.(check int) "saturate low" (-2147483648) (Semantics.cvt_w_s (-1e20))

let test_branch_conds () =
  let t = Alcotest.(check bool) in
  t "beq" true (Semantics.branch_taken Insn.Beq 3 3);
  t "bne" false (Semantics.branch_taken Insn.Bne 3 3);
  t "blez zero" true (Semantics.branch_taken Insn.Blez 0 99);
  t "bgtz" false (Semantics.branch_taken Insn.Bgtz 0 0);
  t "bltz" true (Semantics.branch_taken Insn.Bltz (-1) 0);
  t "bgez zero" true (Semantics.branch_taken Insn.Bgez 0 0)

(* ---- Machine ---- *)

let run src =
  let p = Parse.program_exn src in
  let m = Machine.create p in
  match Machine.run ~limit:1_000_000 m with
  | Machine.Halted -> m
  | Machine.Insn_limit -> Alcotest.fail "instruction limit"
  | Machine.Bad_pc pc -> Alcotest.failf "bad pc %#x" pc

let test_machine_arith_loop () =
  let m = run {|
    li r2, 0
    li r3, 1
loop:
    add r2, r2, r3
    addi r3, r3, 1
    slti r4, r3, 101
    bne r4, r0, loop
    halt
|} in
  Alcotest.(check int) "sum 1..100" 5050 (Machine.reg m (Reg.r 2))

let test_machine_memory () =
  let m = run {|
.space buf 4
    la  r2, buf
    li  r3, -123
    sw  r3, 8(r2)
    lw  r4, 8(r2)
    halt
|} in
  Alcotest.(check int) "store/load" (-123) (Machine.reg m (Reg.r 4))

let test_machine_call () =
  let m = run {|
    li  r2, 5
    jal double
    jal double
    halt
double:
    add r2, r2, r2
    jr  r31
|} in
  Alcotest.(check int) "nested calls" 20 (Machine.reg m (Reg.r 2))

let test_machine_fp () =
  let m = run {|
.float xs 1.5 2.5
    la  r2, xs
    l.s f1, 0(r2)
    l.s f2, 4(r2)
    fmul f3, f1, f2
    fdiv f4, f3, f1
    halt
|} in
  checkf "fmul" 3.75 (Machine.freg m (Reg.f 3));
  checkf "fdiv" 2.5 (Machine.freg m (Reg.f 4))

let test_machine_r0 () =
  let m = run {|
    addi r0, r0, 7
    add  r2, r0, r0
    halt
|} in
  Alcotest.(check int) "r0 stays zero" 0 (Machine.reg m (Reg.r 2))

let test_machine_subword () =
  let m = run {|
.space buf 4
    la  r2, buf
    li  r3, -1
    sb  r3, 0(r2)        # bytes: FF
    li  r4, 0x1234
    sh  r4, 2(r2)
    lb  r5, 0(r2)        # sign-extended: -1
    lbu r6, 0(r2)        # zero-extended: 255
    lh  r7, 2(r2)        # 0x1234
    lhu r8, 2(r2)
    lw  r9, 0(r2)
    halt
|} in
  Alcotest.(check int) "lb" (-1) (Machine.reg m (Reg.r 5));
  Alcotest.(check int) "lbu" 255 (Machine.reg m (Reg.r 6));
  Alcotest.(check int) "lh" 0x1234 (Machine.reg m (Reg.r 7));
  Alcotest.(check int) "lhu" 0x1234 (Machine.reg m (Reg.r 8));
  Alcotest.(check int) "merged word" 0x123400FF (Machine.reg m (Reg.r 9))

let test_machine_subword_signs () =
  let m = run {|
.space buf 4
    la  r2, buf
    li  r3, 0x8081
    sh  r3, 0(r2)
    lh  r4, 0(r2)        # sign-extended negative
    lhu r5, 0(r2)
    lb  r6, 1(r2)        # 0x80 -> -128
    halt
|} in
  Alcotest.(check int) "lh negative" (-32639) (Machine.reg m (Reg.r 4));
  Alcotest.(check int) "lhu" 0x8081 (Machine.reg m (Reg.r 5));
  Alcotest.(check int) "lb negative" (-128) (Machine.reg m (Reg.r 6))

let test_machine_bad_pc () =
  let p = Parse.program_exn "j 0\nhalt\n" in
  let m = Machine.create p in
  match Machine.run m with
  | Machine.Bad_pc 0 -> ()
  | Machine.Bad_pc pc -> Alcotest.failf "wrong pc %#x" pc
  | Machine.Halted | Machine.Insn_limit -> Alcotest.fail "expected bad pc"

let test_machine_insn_limit () =
  let p = Parse.program_exn "loop:\nj loop\nhalt\n" in
  let m = Machine.create p in
  match Machine.run ~limit:100 m with
  | Machine.Insn_limit -> Alcotest.(check int) "count" 100 (Machine.insn_count m)
  | Machine.Halted | Machine.Bad_pc _ -> Alcotest.fail "expected limit"

let test_arch_state_equality () =
  let m1 = run "li r2, 7\nhalt\n" and m2 = run "li r2, 7\nhalt\n" in
  Alcotest.(check bool) "equal states" true
    (Machine.equal_arch (Machine.arch_state m1) (Machine.arch_state m2));
  let m3 = run "li r2, 8\nhalt\n" in
  Alcotest.(check bool) "unequal states" false
    (Machine.equal_arch (Machine.arch_state m1) (Machine.arch_state m3))

let suites =
  [
    ( "interp",
      [
        Alcotest.test_case "alu semantics" `Quick test_alu;
        Alcotest.test_case "shift semantics" `Quick test_shift;
        Alcotest.test_case "mul/div semantics" `Quick test_muldiv;
        Alcotest.test_case "fp single precision" `Quick test_fpu_single;
        Alcotest.test_case "conversions" `Quick test_cvt;
        Alcotest.test_case "branch conditions" `Quick test_branch_conds;
        Alcotest.test_case "machine arithmetic loop" `Quick test_machine_arith_loop;
        Alcotest.test_case "machine memory" `Quick test_machine_memory;
        Alcotest.test_case "machine calls" `Quick test_machine_call;
        Alcotest.test_case "machine fp" `Quick test_machine_fp;
        Alcotest.test_case "machine r0 hardwired" `Quick test_machine_r0;
        Alcotest.test_case "machine sub-word memory" `Quick test_machine_subword;
        Alcotest.test_case "machine sub-word signs" `Quick test_machine_subword_signs;
        Alcotest.test_case "machine bad pc" `Quick test_machine_bad_pc;
        Alcotest.test_case "machine instruction limit" `Quick test_machine_insn_limit;
        Alcotest.test_case "arch state equality" `Quick test_arch_state_equality;
      ] );
  ]
