test/test_differential.ml: Alcotest Codegen Config Format Ir List Machine Printf Processor QCheck QCheck_alcotest Random Riq_core Riq_interp Riq_loopir Riq_ooo
