test/test_ooo.ml: Alcotest Array Config Fu Gen Insn Iq List Lsq QCheck QCheck_alcotest Riq_isa Riq_ooo Rob
