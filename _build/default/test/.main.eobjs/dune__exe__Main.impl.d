test/main.ml: Alcotest Test_asm Test_asm_fuzz Test_branch Test_core Test_differential Test_harness Test_interp Test_isa Test_loopir Test_mem Test_ooo Test_power Test_util Test_workloads
