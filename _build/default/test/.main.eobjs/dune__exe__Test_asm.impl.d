test/test_asm.ml: Alcotest Array Builder Encode Hashtbl Insn List Option Parse Program QCheck QCheck_alcotest Reg Riq_asm Riq_interp Riq_isa Test_isa
