test/test_isa.ml: Alcotest Encode Insn QCheck QCheck_alcotest Reg Riq_isa
