test/test_mem.ml: Alcotest Array Cache Gen Hierarchy Int32 List QCheck QCheck_alcotest Riq_mem Store
