test/test_asm_fuzz.ml: Alcotest Array Builder Config Format Insn List Machine Processor Reg Riq_asm Riq_core Riq_interp Riq_isa Riq_ooo Riq_util Rng
