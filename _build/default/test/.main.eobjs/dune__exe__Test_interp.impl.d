test/test_interp.ml: Alcotest Float Insn Int32 Machine Parse Reg Riq_asm Riq_interp Riq_isa Semantics
