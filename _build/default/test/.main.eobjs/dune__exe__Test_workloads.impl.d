test/test_workloads.ml: Alcotest Array Codegen Ir List Option Riq_asm Riq_interp Riq_loopir Riq_mem Riq_workloads Workloads
