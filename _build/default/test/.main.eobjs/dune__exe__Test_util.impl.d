test/test_util.ml: Alcotest Array Bits Fun QCheck QCheck_alcotest Riq_util Rng Stats String Table
