test/test_harness.ml: Alcotest Config Figures Lazy List Processor Riq_core Riq_harness Riq_ooo Riq_util Riq_workloads Run String Sweep Workloads
