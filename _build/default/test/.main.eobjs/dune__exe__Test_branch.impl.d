test/test_branch.ml: Alcotest Bimod Btb Gen Gshare Insn List Predictor QCheck QCheck_alcotest Ras Reg Riq_branch Riq_isa
