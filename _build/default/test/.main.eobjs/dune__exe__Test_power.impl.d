test/test_power.ml: Account Alcotest Array Component Model QCheck QCheck_alcotest Riq_power
