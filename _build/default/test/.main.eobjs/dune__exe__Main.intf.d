test/main.mli:
