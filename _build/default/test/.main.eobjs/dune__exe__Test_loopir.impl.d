test/test_loopir.ml: Alcotest Codegen Distribute Interchange Ir List Machine Option Printf Riq_asm Riq_interp Riq_loopir Riq_mem Riq_workloads Unroll
