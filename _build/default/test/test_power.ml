open Riq_power

let geometry = Model.baseline_geometry
let model = Model.create geometry

(* ---- Component ---- *)

let test_component_indexing () =
  Alcotest.(check int) "count matches all" Component.count (Array.length Component.all);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Component.name c) i (Component.index c);
      Alcotest.(check bool) "roundtrip" true (Component.of_index i = c))
    Component.all

let test_component_groups () =
  Alcotest.(check bool) "icache group" true (Component.group Component.Icache = Component.G_icache);
  Alcotest.(check bool) "btb in bpred" true (Component.group Component.Btb = Component.G_bpred);
  Alcotest.(check bool) "wakeup in iq" true
    (Component.group Component.Iq_wakeup = Component.G_iq);
  Alcotest.(check bool) "nblt overhead" true
    (Component.group Component.Nblt = Component.G_overhead);
  Alcotest.(check bool) "clock other" true (Component.group Component.Clock = Component.G_other)

(* ---- Model scaling ---- *)

let test_model_iq_scaling () =
  let big = Model.create { geometry with Model.iq_entries = 256; rob_entries = 256 } in
  (* Wakeup CAM energy is linear in entries. *)
  Alcotest.(check (float 1e-6)) "wakeup x4"
    (4. *. Model.energy model Component.Iq_wakeup)
    (Model.energy big Component.Iq_wakeup);
  Alcotest.(check bool) "payload grows sublinearly" true
    (Model.energy big Component.Iq_payload < 4. *. Model.energy model Component.Iq_payload
    && Model.energy big Component.Iq_payload > 2. *. Model.energy model Component.Iq_payload);
  Alcotest.(check bool) "clock grows" true
    (Model.clock_per_cycle big > Model.clock_per_cycle model)

let test_model_idle_residual () =
  Array.iter
    (fun c ->
      if c <> Component.Clock then
        Alcotest.(check bool) (Component.name c) true
          (Model.idle model c <= Model.energy model c *. 0.1 *. 8.1
          && Model.idle model c >= 0.))
    Component.all

let test_model_positive () =
  Array.iter
    (fun c ->
      match c with
      | Component.Clock -> ()
      | Component.L0cache | Component.Loopcache ->
          (* absent in the baseline geometry: zero energy, zero residual *)
          Alcotest.(check (float 0.)) (Component.name c) 0. (Model.energy model c)
      | _ -> Alcotest.(check bool) (Component.name c) true (Model.energy model c > 0.))
    Component.all;
  Alcotest.(check bool) "partial update fraction" true
    (Model.iq_partial_update_fraction > 0. && Model.iq_partial_update_fraction < 1.)

(* ---- Account ---- *)

let test_account_active_vs_idle () =
  let a = Account.create model in
  (* one cycle with 2 icache accesses *)
  Account.add a Component.Icache 2.;
  Account.tick a;
  let active = Account.energy_of a Component.Icache in
  Alcotest.(check (float 1e-9)) "active cycle" (2. *. Model.energy model Component.Icache) active;
  (* one idle cycle charges the residual *)
  Account.tick a;
  Alcotest.(check (float 1e-9)) "idle residual"
    (active +. Model.idle model Component.Icache)
    (Account.energy_of a Component.Icache);
  Alcotest.(check int) "cycles" 2 (Account.cycles a)

let test_account_clock_always () =
  let a = Account.create model in
  Account.tick a;
  Account.tick a;
  Alcotest.(check (float 1e-9)) "clock per cycle"
    (2. *. Model.clock_per_cycle model)
    (Account.energy_of a Component.Clock)

let test_account_activity_reset () =
  let a = Account.create model in
  Account.add a Component.Ialu 3.;
  Account.tick a;
  Account.tick a;
  (* second tick must not re-charge the 3 accesses *)
  Alcotest.(check (float 1e-9)) "no leakage of counts"
    ((3. *. Model.energy model Component.Ialu) +. Model.idle model Component.Ialu)
    (Account.energy_of a Component.Ialu)

let test_account_groups_sum () =
  let a = Account.create model in
  Account.add a Component.Icache 1.;
  Account.add a Component.Btb 1.;
  Account.tick a;
  let total = Account.total_energy a in
  let sum =
    Array.fold_left (fun acc g -> acc +. Account.group_energy a g) 0. Component.groups
  in
  Alcotest.(check (float 1e-6)) "groups partition total" total sum

let test_account_avg_power () =
  let a = Account.create model in
  Alcotest.(check (float 0.)) "no cycles" 0. (Account.avg_power a);
  Account.tick a;
  Account.tick a;
  Alcotest.(check (float 1e-9)) "avg" (Account.total_energy a /. 2.) (Account.avg_power a)

let test_account_breakdown () =
  let a = Account.create model in
  Account.add a Component.Icache 100.;
  Account.tick a;
  let bd = Account.breakdown a in
  let total = Array.fold_left (fun acc (_, f) -> acc +. f) 0. bd in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1. total;
  let c0, _ = bd.(0) in
  Alcotest.(check string) "dominant first" "icache" (Component.name c0)

let prop_account_monotone =
  QCheck.Test.make ~name:"energy is monotone in activity" ~count:200
    QCheck.(pair (int_bound 20) (int_bound 20))
    (fun (n1, n2) ->
      let run n =
        let a = Account.create model in
        Account.add a Component.Dcache (float_of_int n);
        Account.tick a;
        Account.total_energy a
      in
      n1 = n2 || (run (min n1 n2) < run (max n1 n2)) || min n1 n2 = 0)

let suites =
  [
    ( "power",
      [
        Alcotest.test_case "component indexing" `Quick test_component_indexing;
        Alcotest.test_case "component groups" `Quick test_component_groups;
        Alcotest.test_case "model IQ scaling" `Quick test_model_iq_scaling;
        Alcotest.test_case "model idle residual" `Quick test_model_idle_residual;
        Alcotest.test_case "model energies positive" `Quick test_model_positive;
        Alcotest.test_case "account active vs idle" `Quick test_account_active_vs_idle;
        Alcotest.test_case "account clock" `Quick test_account_clock_always;
        Alcotest.test_case "account activity reset" `Quick test_account_activity_reset;
        Alcotest.test_case "account groups" `Quick test_account_groups_sum;
        Alcotest.test_case "account avg power" `Quick test_account_avg_power;
        Alcotest.test_case "account breakdown" `Quick test_account_breakdown;
        QCheck_alcotest.to_alcotest prop_account_monotone;
      ] );
  ]
