open Riq_interp
open Riq_loopir

(* shorthands *)
let ic n = Ir.Iconst n
let iv x = Ir.Ivar x
let ( +! ) a b = Ir.Iadd (a, b)
let ( -! ) a b = Ir.Isub (a, b)
let ( *! ) a b = Ir.Imul (a, b)
let fc x = Ir.Fconst x
let fv x = Ir.Fvar x
let fadd a b = Ir.Fadd (a, b)
let fmul a b = Ir.Fmul (a, b)
let ld a s = Ir.Fload (a, s)
let st a s e = Ir.Sfstore (a, s, e)
let for_ var lo hi body = Ir.Sfor { var; lo; hi; body }
let farr name dims = { Ir.a_name = name; a_dims = dims; a_init = `Index_pattern; a_float = true }
let farr0 name dims = { Ir.a_name = name; a_dims = dims; a_init = `Zero; a_float = true }

let prog ?(arrays = []) ?(ints = []) ?(floats = []) ?(procs = []) main =
  { Ir.arrays; int_scalars = ints; float_scalars = floats; procs; main }

(* ---- validation ---- *)

let expect_invalid p =
  match Ir.validate p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

let test_validate_ok () =
  let p =
    prog ~arrays:[ farr "a" [ 4 ] ] ~floats:[ "s" ]
      [ for_ "i" (ic 0) (ic 4) [ Ir.Sfassign ("s", fadd (fv "s") (ld "a" [ iv "i" ])) ] ]
  in
  match Ir.validate p with Ok () -> () | Error m -> Alcotest.fail m

let test_validate_errors () =
  expect_invalid (prog [ Ir.Sfassign ("nope", fc 1.) ]);
  expect_invalid (prog [ st "ghost" [ ic 0 ] (fc 1.) ]);
  expect_invalid
    (prog ~arrays:[ farr "a" [ 4; 4 ] ] [ st "a" [ ic 0 ] (fc 1.) ] (* wrong arity *));
  expect_invalid (prog [ Ir.Scall "missing" ]);
  expect_invalid
    (prog ~procs:[ ("r", [ Ir.Scall "r" ]) ] [ Ir.Scall "r" ] (* recursion *));
  expect_invalid
    (prog ~ints:[ "i" ] [ for_ "i" (ic 0) (ic 2) [ Ir.Siassign ("i", ic 0) ] ])

(* ---- codegen + interp ---- *)

let run_ir p =
  (match Ir.validate p with Ok () -> () | Error m -> Alcotest.fail m);
  let program = Codegen.compile p in
  let m = Machine.create program in
  match Machine.run ~limit:10_000_000 m with
  | Machine.Halted -> (program, m)
  | _ -> Alcotest.fail "IR program did not halt"

(* Compare the data contents of every declared array between two runs;
   the text segments legitimately differ after transformation. *)
let arrays_equal p (prog1, m1) (prog2, m2) =
  List.for_all
    (fun (a : Ir.array_decl) ->
      let n = List.fold_left ( * ) 1 a.Ir.a_dims in
      let b1 = Option.get (Riq_asm.Program.address_of prog1 ("g_" ^ a.Ir.a_name)) in
      let b2 = Option.get (Riq_asm.Program.address_of prog2 ("g_" ^ a.Ir.a_name)) in
      let ok = ref true in
      for k = 0 to n - 1 do
        if
          Riq_mem.Store.read_word (Machine.mem m1) (b1 + (4 * k))
          <> Riq_mem.Store.read_word (Machine.mem m2) (b2 + (4 * k))
        then ok := false
      done;
      !ok)
    p.Ir.arrays

let read_cell program m arr idx =
  let base = Option.get (Riq_asm.Program.address_of program ("g_" ^ arr)) in
  Riq_mem.Store.read_float (Machine.mem m) (base + (4 * idx))

let test_codegen_saxpy () =
  let n = 8 in
  let p =
    prog
      ~arrays:[ farr "x" [ n ]; farr0 "y" [ n ] ]
      [
        for_ "i" (ic 0) (ic n)
          [ st "y" [ iv "i" ] (fmul (fc 2.0) (ld "x" [ iv "i" ])) ];
      ]
  in
  let program, m = run_ir p in
  for k = 0 to n - 1 do
    let expected = 2.0 *. (1.0 +. (float_of_int (k mod 13) *. 0.25)) in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "y[%d]" k)
      expected
      (read_cell program m "y" k)
  done

let test_codegen_2d_rowmajor () =
  let p =
    prog
      ~arrays:[ farr0 "a" [ 3; 4 ] ]
      [
        for_ "i" (ic 0) (ic 3)
          [
            for_ "j" (ic 0) (ic 4)
              [ st "a" [ iv "i"; iv "j" ] (Ir.Fofint ((iv "i" *! ic 10) +! iv "j")) ];
          ];
      ]
  in
  let program, m = run_ir p in
  Alcotest.(check (float 0.)) "a[2][3]" 23. (read_cell program m "a" ((2 * 4) + 3));
  Alcotest.(check (float 0.)) "a[1][0]" 10. (read_cell program m "a" 4)

let test_codegen_zero_trip () =
  let p =
    prog ~arrays:[ farr0 "a" [ 2 ] ]
      [ for_ "i" (ic 5) (ic 5) [ st "a" [ ic 0 ] (fc 9.) ] ]
  in
  let program, m = run_ir p in
  Alcotest.(check (float 0.)) "never ran" 0. (read_cell program m "a" 0)

let test_codegen_if_else () =
  let p =
    prog ~arrays:[ farr0 "a" [ 4 ] ] ~ints:[ "k" ]
      [
        for_ "i" (ic 0) (ic 4)
          [
            Ir.Sif
              ( Ir.Cilt (iv "i", ic 2),
                [ st "a" [ iv "i" ] (fc 1.) ],
                [ st "a" [ iv "i" ] (fc 2.) ] );
          ];
      ]
  in
  let program, m = run_ir p in
  Alcotest.(check (float 0.)) "then" 1. (read_cell program m "a" 0);
  Alcotest.(check (float 0.)) "else" 2. (read_cell program m "a" 3)

let test_codegen_procedures () =
  let p =
    prog ~arrays:[ farr0 "a" [ 1 ] ] ~floats:[ "acc" ]
      ~procs:[ ("inc", [ Ir.Sfassign ("acc", fadd (fv "acc") (fc 1.)) ]) ]
      [
        for_ "i" (ic 0) (ic 10) [ Ir.Scall "inc" ];
        st "a" [ ic 0 ] (fv "acc");
      ]
  in
  let program, m = run_ir p in
  Alcotest.(check (float 0.)) "ten calls" 10. (read_cell program m "a" 0)

let test_codegen_scalar_spill () =
  (* more float scalars than the register pool: force memory homes *)
  let names = List.init 24 (fun i -> Printf.sprintf "s%d" i) in
  let assigns = List.map (fun n -> Ir.Sfassign (n, fc 1.)) names in
  let sum = List.fold_left (fun acc n -> fadd acc (fv n)) (fc 0.) names in
  let p =
    prog ~arrays:[ farr0 "a" [ 1 ] ] ~floats:names (assigns @ [ st "a" [ ic 0 ] sum ])
  in
  let program, m = run_ir p in
  Alcotest.(check (float 0.)) "spilled scalars" 24. (read_cell program m "a" 0)

let test_codegen_int_array () =
  let p =
    prog
      ~arrays:[ { Ir.a_name = "k"; a_dims = [ 4 ]; a_init = `Zero; a_float = false };
                farr0 "out" [ 4 ] ]
      [
        for_ "i" (ic 0) (ic 4) [ Ir.Sistore ("k", [ iv "i" ], iv "i" *! ic 3) ];
        for_ "j" (ic 0) (ic 4)
          [ st "out" [ iv "j" ] (Ir.Fofint (Ir.Iload ("k", [ iv "j" ]))) ];
      ]
  in
  let program, m = run_ir p in
  Alcotest.(check (float 0.)) "indirect" 9. (read_cell program m "out" 3)

(* ---- dependence analysis ---- *)

let dep p a b = Distribute.statement_dependence p ~loop_var:"i" a b

let empty_env arrays = prog ~arrays []

let test_dep_independent () =
  let p = empty_env [ farr "x" [ 8 ]; farr0 "y" [ 8 ]; farr0 "z" [ 8 ] ] in
  let s1 = st "y" [ iv "i" ] (ld "x" [ iv "i" ]) in
  let s2 = st "z" [ iv "i" ] (ld "x" [ iv "i" ]) in
  Alcotest.(check bool) "no dep" true (dep p s1 s2 = Distribute.No_dep)

let test_dep_forward_flow () =
  let p = empty_env [ farr "x" [ 8 ]; farr0 "y" [ 8 ]; farr0 "z" [ 8 ] ] in
  let s1 = st "y" [ iv "i" ] (ld "x" [ iv "i" ]) in
  let s2 = st "z" [ iv "i" ] (ld "y" [ iv "i" ]) in
  Alcotest.(check bool) "forward" true (dep p s1 s2 = Distribute.Forward)

let test_dep_forward_carried () =
  let p = empty_env [ farr "x" [ 8 ]; farr0 "y" [ 8 ]; farr0 "z" [ 8 ] ] in
  let s1 = st "y" [ iv "i" ] (ld "x" [ iv "i" ]) in
  let s2 = st "z" [ iv "i" ] (ld "y" [ iv "i" -! ic 1 ]) in
  Alcotest.(check bool) "carried forward" true (dep p s1 s2 = Distribute.Forward)

let test_dep_backward_anti () =
  let p = empty_env [ farr "x" [ 8 ]; farr0 "y" [ 8 ]; farr0 "z" [ 8 ] ] in
  (* s2 reads y[i+1], which s1 writes in the NEXT iteration: an
     anti-dependence from the second statement back to the first, so the
     consumer loop would have to run first — a backward edge. *)
  let s1 = st "y" [ iv "i" ] (ld "x" [ iv "i" ]) in
  let s2 = st "z" [ iv "i" ] (ld "y" [ iv "i" +! ic 1 ]) in
  Alcotest.(check bool) "backward" true (dep p s1 s2 = Distribute.Backward)

let test_dep_scalar_merge () =
  let p =
    { (empty_env [ farr "x" [ 8 ]; farr0 "y" [ 8 ] ]) with Ir.float_scalars = [ "t" ] }
  in
  let s1 = Ir.Sfassign ("t", ld "x" [ iv "i" ]) in
  let s2 = st "y" [ iv "i" ] (fv "t") in
  Alcotest.(check bool) "scalar forces cycle" true (dep p s1 s2 = Distribute.Both)

let test_dep_disjoint_constants () =
  let p = empty_env [ farr0 "y" [ 8; 8 ] ] in
  let s1 = st "y" [ ic 0; iv "i" ] (fc 1.) in
  let s2 = st "y" [ ic 1; iv "i" ] (fc 2.) in
  Alcotest.(check bool) "disjoint rows" true (dep p s1 s2 = Distribute.No_dep)

let test_dep_complex_conservative () =
  let p =
    empty_env
      [ farr0 "y" [ 64 ]; { Ir.a_name = "idx"; a_dims = [ 64 ]; a_init = `Zero; a_float = false } ]
  in
  let s1 = st "y" [ Ir.Iload ("idx", [ iv "i" ]) ] (fc 1.) in
  let s2 = st "y" [ iv "i" ] (fc 2.) in
  Alcotest.(check bool) "indirection is conservative" true (dep p s1 s2 = Distribute.Both)

(* ---- distribution ---- *)

let count_loops stmts =
  let rec go acc = function
    | Ir.Sfor { body; _ } -> List.fold_left go (acc + 1) body
    | Ir.Sif (_, a, b) -> List.fold_left go (List.fold_left go acc a) b
    | _ -> acc
  in
  List.fold_left go 0 stmts

let test_distribute_splits () =
  let p =
    prog
      ~arrays:[ farr "x" [ 8 ]; farr0 "y" [ 8 ]; farr0 "z" [ 8 ] ]
      [
        for_ "i" (ic 0) (ic 8)
          [
            st "y" [ iv "i" ] (fmul (ld "x" [ iv "i" ]) (fc 2.));
            st "z" [ iv "i" ] (fadd (ld "y" [ iv "i" ]) (fc 1.));
          ];
      ]
  in
  let d = Distribute.distribute_program p in
  Alcotest.(check int) "split into two loops" 2 (count_loops d.Ir.main);
  (* order must put the producer first *)
  (match d.Ir.main with
  | Ir.Sfor { body = [ Ir.Sfstore ("y", _, _) ]; _ } :: _ -> ()
  | _ -> Alcotest.fail "producer loop must come first");
  (* and results are identical *)
  let r1 = run_ir p in
  let r2 = run_ir d in
  Alcotest.(check bool) "same results" true (arrays_equal p r1 r2)

let test_distribute_keeps_recurrence () =
  let p =
    prog
      ~arrays:[ farr "x" [ 8 ]; farr0 "y" [ 8 ] ]
      [
        for_ "i" (ic 1) (ic 8)
          [
            st "y" [ iv "i" ] (fadd (ld "y" [ iv "i" -! ic 1 ]) (ld "x" [ iv "i" ]));
            st "x" [ iv "i" ] (fmul (ld "y" [ iv "i" ]) (fc 0.5));
          ];
      ]
  in
  let d = Distribute.distribute_program p in
  (* y depends on x of the same iteration and x on y: check legality is
     preserved by re-running *)
  let r1 = run_ir p in
  let r2 = run_ir d in
  Alcotest.(check bool) "distributed result matches" true (arrays_equal p r1 r2)

let test_distribute_workload_semantics () =
  (* the paper's Section 4 experiment depends on this: distributed kernels
     must be observationally identical in memory *)
  List.iter
    (fun name ->
      let w = Riq_workloads.Workloads.find name in
      let p1 = Riq_workloads.Workloads.program w in
      let p2 = Riq_workloads.Workloads.optimized w in
      let run p =
        let m = Machine.create p in
        match Machine.run ~limit:50_000_000 m with
        | Machine.Halted -> (p, m)
        | _ -> Alcotest.failf "%s did not halt" name
      in
      let a = run p1 and b = run p2 in
      Alcotest.(check bool)
        (name ^ " array contents identical")
        true
        (arrays_equal w.Riq_workloads.Workloads.ir a b))
    [ "vpenta"; "tomcat"; "adi" ]

let suites =
  [
    ( "loopir",
      [
        Alcotest.test_case "validate accepts" `Quick test_validate_ok;
        Alcotest.test_case "validate rejects" `Quick test_validate_errors;
        Alcotest.test_case "codegen saxpy" `Quick test_codegen_saxpy;
        Alcotest.test_case "codegen 2d row-major" `Quick test_codegen_2d_rowmajor;
        Alcotest.test_case "codegen zero-trip loop" `Quick test_codegen_zero_trip;
        Alcotest.test_case "codegen if/else" `Quick test_codegen_if_else;
        Alcotest.test_case "codegen procedures" `Quick test_codegen_procedures;
        Alcotest.test_case "codegen scalar spill" `Quick test_codegen_scalar_spill;
        Alcotest.test_case "codegen int arrays" `Quick test_codegen_int_array;
        Alcotest.test_case "dep: independent" `Quick test_dep_independent;
        Alcotest.test_case "dep: forward flow" `Quick test_dep_forward_flow;
        Alcotest.test_case "dep: carried forward" `Quick test_dep_forward_carried;
        Alcotest.test_case "dep: backward anti" `Quick test_dep_backward_anti;
        Alcotest.test_case "dep: scalar merge" `Quick test_dep_scalar_merge;
        Alcotest.test_case "dep: disjoint constants" `Quick test_dep_disjoint_constants;
        Alcotest.test_case "dep: indirection conservative" `Quick
          test_dep_complex_conservative;
        Alcotest.test_case "distribute splits producer/consumer" `Quick
          test_distribute_splits;
        Alcotest.test_case "distribute preserves recurrences" `Quick
          test_distribute_keeps_recurrence;
        Alcotest.test_case "distributed workloads semantics" `Slow
          test_distribute_workload_semantics;
      ] );
  ]

(* ---- unrolling ---- *)

let test_unroll_exact_division () =
  let p =
    prog
      ~arrays:[ farr "x" [ 16 ]; farr0 "y" [ 16 ] ]
      [
        for_ "i" (ic 0) (ic 16)
          [ st "y" [ iv "i" ] (fmul (ld "x" [ iv "i" ]) (fc 3.)) ];
      ]
  in
  let u = Unroll.unroll_program ~factor:4 p in
  (* one main loop, no remainder *)
  Alcotest.(check int) "single loop" 1 (List.length u.Ir.main);
  let r1 = run_ir p and r2 = run_ir u in
  Alcotest.(check bool) "same arrays" true (arrays_equal p r1 r2)

let test_unroll_remainder () =
  let p =
    prog
      ~arrays:[ farr "x" [ 16 ]; farr0 "y" [ 16 ] ]
      [
        for_ "i" (ic 1) (ic 14)
          [ st "y" [ iv "i" ] (fadd (ld "x" [ iv "i" ]) (fc 1.)) ];
      ]
  in
  let u = Unroll.unroll_program ~factor:4 p in
  Alcotest.(check int) "main + remainder" 2 (List.length u.Ir.main);
  let r1 = run_ir p and r2 = run_ir u in
  Alcotest.(check bool) "same arrays" true (arrays_equal p r1 r2)

let test_unroll_small_trip_unchanged () =
  let body = [ st "y" [ iv "i" ] (fc 1.) ] in
  let loop = for_ "i" (ic 0) (ic 3) body in
  match Unroll.unroll_stmt ~factor:4 loop with
  | [ Ir.Sfor { lo = Ir.Iconst 0; hi = Ir.Iconst 3; _ } ] -> ()
  | _ -> Alcotest.fail "small loop must be unchanged"

let test_unroll_dynamic_bound_unchanged () =
  let loop = for_ "i" (ic 0) (iv "n") [ st "y" [ iv "i" ] (fc 1.) ] in
  match Unroll.unroll_stmt ~factor:2 loop with
  | [ Ir.Sfor { hi = Ir.Ivar "n"; _ } ] -> ()
  | _ -> Alcotest.fail "dynamic bound must be unchanged"

let test_unroll_recurrence_semantics () =
  (* a loop-carried recurrence must survive unrolling *)
  let p =
    prog
      ~arrays:[ farr "x" [ 32 ]; farr0 "y" [ 32 ] ]
      [
        for_ "i" (ic 1) (ic 30)
          [
            st "y" [ iv "i" ]
              (fadd (ld "y" [ iv "i" -! ic 1 ]) (ld "x" [ iv "i" ]));
          ];
      ]
  in
  let u = Unroll.unroll_program ~factor:3 p in
  let r1 = run_ir p and r2 = run_ir u in
  Alcotest.(check bool) "recurrence preserved" true (arrays_equal p r1 r2)

let test_unroll_nested () =
  let p =
    prog
      ~arrays:[ farr0 "a" [ 8; 8 ] ]
      [
        for_ "i" (ic 0) (ic 8)
          [
            for_ "j" (ic 0) (ic 8)
              [ st "a" [ iv "i"; iv "j" ] (Ir.Fofint (Ir.Iadd (iv "i", iv "j"))) ];
          ];
      ]
  in
  let u = Unroll.unroll_program ~factor:2 p in
  let r1 = run_ir p and r2 = run_ir u in
  Alcotest.(check bool) "nested unroll" true (arrays_equal p r1 r2)

let test_substitute_index () =
  let s = st "y" [ iv "i" ] (ld "x" [ iv "i" +! ic 1 ]) in
  match Unroll.substitute_index "i" (ic 7) s with
  | Ir.Sfstore ("y", [ Ir.Iconst 7 ], Ir.Fload ("x", [ Ir.Iadd (Ir.Iconst 7, Ir.Iconst 1) ])) ->
      ()
  | _ -> Alcotest.fail "substitution wrong"

let test_unroll_workload_semantics () =
  List.iter
    (fun name ->
      let w = Riq_workloads.Workloads.find name in
      let u = Unroll.unroll_program ~factor:2 w.Riq_workloads.Workloads.ir in
      let r1 = run_ir w.Riq_workloads.Workloads.ir and r2 = run_ir u in
      Alcotest.(check bool) (name ^ " unrolled arrays equal") true
        (arrays_equal w.Riq_workloads.Workloads.ir r1 r2))
    [ "wss"; "tsf" ]

let unroll_suites =
  [
    ( "unroll",
      [
        Alcotest.test_case "exact division" `Quick test_unroll_exact_division;
        Alcotest.test_case "remainder loop" `Quick test_unroll_remainder;
        Alcotest.test_case "small trip unchanged" `Quick test_unroll_small_trip_unchanged;
        Alcotest.test_case "dynamic bound unchanged" `Quick test_unroll_dynamic_bound_unchanged;
        Alcotest.test_case "recurrence preserved" `Quick test_unroll_recurrence_semantics;
        Alcotest.test_case "nested loops" `Quick test_unroll_nested;
        Alcotest.test_case "index substitution" `Quick test_substitute_index;
        Alcotest.test_case "workload semantics" `Slow test_unroll_workload_semantics;
      ] );
  ]

(* ---- interchange ---- *)

let nest2 body = for_ "i" (ic 0) (ic 8) [ for_ "j" (ic 0) (ic 8) body ]

let test_interchange_legal () =
  let p = prog ~arrays:[ farr "x" [ 8; 8 ]; farr0 "y" [ 8; 8 ] ] [] in
  (* y[i][j] = x[i][j]: no carried dependences; interchange legal *)
  let nest = nest2 [ st "y" [ iv "i"; iv "j" ] (ld "x" [ iv "i"; iv "j" ]) ] in
  (match Interchange.interchange p nest with
  | Some (Ir.Sfor { var = "j"; body = [ Ir.Sfor { var = "i"; _ } ]; _ }) -> ()
  | Some _ -> Alcotest.fail "wrong shape"
  | None -> Alcotest.fail "expected legal");
  (* and the swapped nest computes the same values *)
  let mk nest = { p with Ir.main = [ nest ] } in
  let r1 = run_ir (mk nest) in
  let r2 = run_ir (mk (Option.get (Interchange.interchange p nest))) in
  Alcotest.(check bool) "same arrays" true (arrays_equal p r1 r2)

let test_interchange_illegal_direction () =
  let p = prog ~arrays:[ farr0 "y" [ 16; 16 ] ] [] in
  (* y[i][j] = y[i-1][j+1]: direction (<, >) — interchange must refuse *)
  let nest =
    for_ "i" (ic 1) (ic 8)
      [
        for_ "j" (ic 0) (ic 7)
          [
            st "y" [ iv "i"; iv "j" ] (ld "y" [ iv "i" -! ic 1; iv "j" +! ic 1 ]);
          ];
      ]
  in
  Alcotest.(check bool) "illegal refused" true (Interchange.interchange p nest = None)

let test_interchange_legal_same_sign () =
  let p = prog ~arrays:[ farr0 "y" [ 16; 16 ] ] [] in
  (* y[i][j] = y[i-1][j-1]: direction (<, <) — interchange legal *)
  let nest =
    for_ "i" (ic 1) (ic 8)
      [
        for_ "j" (ic 1) (ic 8)
          [
            st "y" [ iv "i"; iv "j" ] (ld "y" [ iv "i" -! ic 1; iv "j" -! ic 1 ]);
          ];
      ]
  in
  (match Interchange.interchange p nest with
  | Some _ -> ()
  | None -> Alcotest.fail "(<,<) must be legal");
  let mk nest = { p with Ir.main = [ nest ] } in
  let r1 = run_ir (mk nest) in
  let r2 = run_ir (mk (Option.get (Interchange.interchange p nest))) in
  Alcotest.(check bool) "same arrays" true (arrays_equal p r1 r2)

let test_interchange_imperfect_nest () =
  let p = prog ~arrays:[ farr0 "y" [ 8; 8 ] ] ~floats:[ "s" ] [] in
  let nest =
    for_ "i" (ic 0) (ic 8)
      [
        Ir.Sfassign ("s", fc 0.);
        for_ "j" (ic 0) (ic 8) [ st "y" [ iv "i"; iv "j" ] (fv "s") ];
      ]
  in
  Alcotest.(check bool) "imperfect refused" true (Interchange.interchange p nest = None)

let test_interchange_bound_dependence () =
  let p = prog ~arrays:[ farr0 "y" [ 8; 8 ] ] [] in
  (* triangular nest: inner bound mentions the outer index *)
  let nest =
    for_ "i" (ic 0) (ic 8)
      [ for_ "j" (ic 0) (iv "i") [ st "y" [ iv "i"; iv "j" ] (fc 1.) ] ]
  in
  Alcotest.(check bool) "triangular refused" true (Interchange.interchange p nest = None)

let test_interchange_program_counts () =
  let p =
    prog ~arrays:[ farr "x" [ 8; 8 ]; farr0 "y" [ 8; 8 ] ]
      [
        nest2 [ st "y" [ iv "i"; iv "j" ] (ld "x" [ iv "j"; iv "i" ]) ];
        Ir.Sfassign ("dummy", fc 0.);
      ]
  in
  let p = { p with Ir.float_scalars = [ "dummy" ] } in
  let p', n = Interchange.interchange_program p in
  Alcotest.(check int) "one nest swapped" 1 n;
  let r1 = run_ir p and r2 = run_ir p' in
  Alcotest.(check bool) "same arrays" true (arrays_equal p r1 r2)

let interchange_suites =
  [
    ( "interchange",
      [
        Alcotest.test_case "legal independent nest" `Quick test_interchange_legal;
        Alcotest.test_case "(<,>) refused" `Quick test_interchange_illegal_direction;
        Alcotest.test_case "(<,<) legal" `Quick test_interchange_legal_same_sign;
        Alcotest.test_case "imperfect nest refused" `Quick test_interchange_imperfect_nest;
        Alcotest.test_case "triangular bounds refused" `Quick test_interchange_bound_dependence;
        Alcotest.test_case "program-wide pass" `Quick test_interchange_program_counts;
      ] );
  ]
