(* The central correctness property of the reproduction: for any program,
   the out-of-order processor — with or without the reusable-instruction
   issue queue, at any queue size — must produce exactly the architectural
   state of the functional reference simulator. Random structured loop
   programs are generated at the IR level so they are guaranteed to halt
   and to stay within their arrays. *)

open Riq_interp
open Riq_ooo
open Riq_core
open Riq_loopir

let arr_n = 64

let arrays =
  [
    { Ir.a_name = "a"; a_dims = [ arr_n ]; a_init = `Index_pattern; a_float = true };
    { Ir.a_name = "b"; a_dims = [ arr_n ]; a_init = `Zero; a_float = true };
    { Ir.a_name = "m2"; a_dims = [ 8; 8 ]; a_init = `Index_pattern; a_float = true };
    { Ir.a_name = "k"; a_dims = [ arr_n ]; a_init = `Index_pattern; a_float = false };
  ]

(* Generator state: which loop variables are in scope (their values are in
   [0, 32)), nesting depth. *)
let gen_program =
  let open QCheck.Gen in
  (* an in-bounds subscript for a 64-element array *)
  let subscript env =
    match env with
    | [] -> map (fun c -> Ir.Iconst c) (int_bound (arr_n - 1))
    | vs ->
        oneof
          [
            map (fun c -> Ir.Iconst c) (int_bound (arr_n - 1));
            map (fun v -> Ir.Ivar v) (oneofl vs);
            map2 (fun v c -> Ir.Iadd (Ir.Ivar v, Ir.Iconst c)) (oneofl vs) (int_bound 16);
          ]
  in
  let sub8 env =
    match env with
    | [] -> map (fun c -> Ir.Iconst c) (int_bound 7)
    | vs ->
        oneof
          [
            map (fun c -> Ir.Iconst c) (int_bound 7);
            (* loop bounds are <= 32; fold into range with a constant row *)
            map (fun _ -> Ir.Iconst 3) (oneofl vs);
          ]
  in
  let rec iexpr env depth =
    if depth = 0 then
      oneof
        ([ map (fun c -> Ir.Iconst c) (int_range (-50) 50) ]
        @ (if env = [] then [] else [ map (fun v -> Ir.Ivar v) (oneofl env) ])
        @ [ oneofl [ Ir.Ivar "n0"; Ir.Ivar "n1" ] ])
    else
      frequency
        [
          (2, iexpr env 0);
          (2, map2 (fun a b -> Ir.Iadd (a, b)) (iexpr env (depth - 1)) (iexpr env (depth - 1)));
          (1, map2 (fun a b -> Ir.Isub (a, b)) (iexpr env (depth - 1)) (iexpr env (depth - 1)));
          (1, map2 (fun a b -> Ir.Imul (a, b)) (iexpr env 0) (iexpr env 0));
          (1, map (fun s -> Ir.Iload ("k", [ s ])) (subscript env));
        ]
  in
  let rec fexpr env depth =
    if depth = 0 then
      oneof
        [
          map (fun c -> Ir.Fconst (float_of_int c *. 0.25)) (int_range (-20) 20);
          oneofl [ Ir.Fvar "s0"; Ir.Fvar "s1" ];
          map (fun s -> Ir.Fload ("a", [ s ])) (subscript env);
          map (fun s -> Ir.Fload ("b", [ s ])) (subscript env);
          map2 (fun r c -> Ir.Fload ("m2", [ r; c ])) (sub8 env) (sub8 env);
        ]
    else
      frequency
        [
          (3, fexpr env 0);
          (3, map2 (fun a b -> Ir.Fadd (a, b)) (fexpr env (depth - 1)) (fexpr env (depth - 1)));
          (2, map2 (fun a b -> Ir.Fsub (a, b)) (fexpr env (depth - 1)) (fexpr env (depth - 1)));
          (2, map2 (fun a b -> Ir.Fmul (a, b)) (fexpr env (depth - 1)) (fexpr env 0));
          (1, map (fun a -> Ir.Fabs a) (fexpr env (depth - 1)));
          (1, map (fun a -> Ir.Fneg a) (fexpr env (depth - 1)));
          (1, map (fun a -> Ir.Fofint a) (iexpr env 1));
          ( 1,
            map2
              (fun a b -> Ir.Fdiv (a, Ir.Fadd (Ir.Fabs b, Ir.Fconst 1.0)))
              (fexpr env 0) (fexpr env 0) );
        ]
  in
  let cond env =
    oneof
      [
        map2 (fun a b -> Ir.Clt (a, b)) (fexpr env 1) (fexpr env 1);
        map2 (fun a b -> Ir.Cle (a, b)) (fexpr env 0) (fexpr env 0);
        map2 (fun a b -> Ir.Cilt (a, b)) (iexpr env 1) (iexpr env 1);
        map2 (fun a b -> Ir.Cieq (a, b)) (iexpr env 0) (iexpr env 0);
      ]
  in
  let rec stmt env ~loop_depth ~size =
    let leaf =
      frequency
        [
          (3, map2 (fun v e -> Ir.Sfassign (v, e)) (oneofl [ "s0"; "s1" ]) (fexpr env 2));
          (2, map2 (fun v e -> Ir.Siassign (v, e)) (oneofl [ "n0"; "n1" ]) (iexpr env 2));
          (3, map2 (fun s e -> Ir.Sfstore ("b", s, e)) (map (fun x -> [ x ]) (subscript env)) (fexpr env 2));
          (1, map2 (fun s e -> Ir.Sfstore ("a", s, e)) (map (fun x -> [ x ]) (subscript env)) (fexpr env 1));
          (1, map2 (fun s e -> Ir.Sistore ("k", s, e)) (map (fun x -> [ x ]) (subscript env)) (iexpr env 1));
          (1, return (Ir.Scall "p0"));
          (1, return (Ir.Scall "p1"));
        ]
    in
    if size <= 1 then leaf
    else
      frequency
        [
          (4, leaf);
          ( 2,
            if loop_depth >= 2 then leaf
            else
              let var = Printf.sprintf "v%d" loop_depth in
              int_range 1 24 >>= fun trip ->
              body (var :: env) ~loop_depth:(loop_depth + 1) ~size:(size - 1) >>= fun b ->
              return (Ir.Sfor { var; lo = Ir.Iconst 0; hi = Ir.Iconst trip; body = b }) );
          ( 1,
            cond env >>= fun c ->
            body env ~loop_depth ~size:(size / 2) >>= fun then_b ->
            body env ~loop_depth ~size:(size / 2) >>= fun else_b ->
            return (Ir.Sif (c, then_b, else_b)) );
        ]

  and body env ~loop_depth ~size =
    int_range 1 (max 1 (min 4 size)) >>= fun n ->
    list_repeat n (stmt env ~loop_depth ~size:(size / n))
  in
  body [] ~loop_depth:0 ~size:8 >>= fun main ->
  body [ "pv" ] ~loop_depth:2 ~size:2 >>= fun p0 ->
  body [ "pv" ] ~loop_depth:2 ~size:2 >>= fun p1 ->
  (* procedure bodies must not call procedures (generated at loop_depth 2
     with env containing a var that is not actually bound: replace uses of
     "pv" by a constant via a tiny rewrite) *)
  let rec fix_i e =
    match e with
    | Ir.Ivar "pv" -> Ir.Iconst 5
    | Ir.Iconst _ | Ir.Ivar _ -> e
    | Ir.Iadd (a, b) -> Ir.Iadd (fix_i a, fix_i b)
    | Ir.Isub (a, b) -> Ir.Isub (fix_i a, fix_i b)
    | Ir.Imul (a, b) -> Ir.Imul (fix_i a, fix_i b)
    | Ir.Iload (n, s) -> Ir.Iload (n, List.map fix_i s)
  in
  let rec fix_f e =
    match e with
    | Ir.Fconst _ | Ir.Fvar _ -> e
    | Ir.Fload (n, s) -> Ir.Fload (n, List.map fix_i s)
    | Ir.Fadd (a, b) -> Ir.Fadd (fix_f a, fix_f b)
    | Ir.Fsub (a, b) -> Ir.Fsub (fix_f a, fix_f b)
    | Ir.Fmul (a, b) -> Ir.Fmul (fix_f a, fix_f b)
    | Ir.Fdiv (a, b) -> Ir.Fdiv (fix_f a, fix_f b)
    | Ir.Fneg a -> Ir.Fneg (fix_f a)
    | Ir.Fabs a -> Ir.Fabs (fix_f a)
    | Ir.Fsqrt a -> Ir.Fsqrt (fix_f a)
    | Ir.Fofint a -> Ir.Fofint (fix_i a)
  in
  let fix_c = function
    | Ir.Clt (a, b) -> Ir.Clt (fix_f a, fix_f b)
    | Ir.Cle (a, b) -> Ir.Cle (fix_f a, fix_f b)
    | Ir.Ceq (a, b) -> Ir.Ceq (fix_f a, fix_f b)
    | Ir.Cilt (a, b) -> Ir.Cilt (fix_i a, fix_i b)
    | Ir.Cieq (a, b) -> Ir.Cieq (fix_i a, fix_i b)
  in
  let rec fix_s s =
    match s with
    | Ir.Sfassign (v, e) -> Ir.Sfassign (v, fix_f e)
    | Ir.Siassign (v, e) -> Ir.Siassign (v, fix_i e)
    | Ir.Sfstore (n, subs, e) -> Ir.Sfstore (n, List.map fix_i subs, fix_f e)
    | Ir.Sistore (n, subs, e) -> Ir.Sistore (n, List.map fix_i subs, fix_i e)
    | Ir.Sfor { var; lo; hi; body } ->
        Ir.Sfor { var; lo = fix_i lo; hi = fix_i hi; body = List.map fix_s body }
    | Ir.Sif (c, a, b) -> Ir.Sif (fix_c c, List.map fix_s a, List.map fix_s b)
    | Ir.Scall _ -> Ir.Siassign ("n0", Ir.Iconst 1) (* no nested calls *)
  in
  return
    {
      Ir.arrays;
      int_scalars = [ "n0"; "n1" ];
      float_scalars = [ "s0"; "s1" ];
      procs = [ ("p0", List.map fix_s p0); ("p1", List.map fix_s p1) ];
      main;
    }

let configs =
  [
    ("baseline-64", Config.baseline);
    ("reuse-16", Config.with_iq_size Config.reuse 16);
    ("reuse-64", Config.reuse);
    ("reuse-128", Config.with_iq_size Config.reuse 128);
    ("loopcache-64", Config.loop_cache 64);
    ("filtercache", Config.filter_cache ());
  ]

(* Returns None when all configurations match the reference, or an error
   description. *)
let check_program p =
  match Ir.validate p with
  | Error m -> Some ("invalid generated program: " ^ m)
  | Ok () -> (
      let program = Codegen.compile p in
      let m = Machine.create program in
      match Machine.run ~limit:5_000_000 m with
      | Machine.Insn_limit | Machine.Bad_pc _ -> Some "reference did not halt"
      | Machine.Halted ->
          let golden = Machine.arch_state m in
          List.fold_left
            (fun acc (name, cfg) ->
              match acc with
              | Some _ -> acc
              | None -> (
                  let proc = Processor.create cfg program in
                  match Processor.run ~cycle_limit:20_000_000 proc with
                  | Processor.Cycle_limit -> Some (name ^ ": cycle limit")
                  | Processor.Halted ->
                      if Machine.equal_arch golden (Processor.arch_state proc) then None
                      else
                        Some
                          (Format.asprintf "%s: arch mismatch:@ %a" name
                             (fun ppf () -> Machine.pp_arch_diff ppf golden (Processor.arch_state proc))
                             ())))
            None configs)

(* Deterministic corpus: fixed PRNG seed, so failures are reproducible. *)
let test_fixed_corpus () =
  let rand = Random.State.make [| 20040216 |] in
  for i = 1 to 25 do
    let p = QCheck.Gen.generate1 ~rand gen_program in
    match check_program p with
    | None -> ()
    | Some err ->
        Alcotest.failf "corpus program %d failed: %s@.%s" i err
          (Format.asprintf "%a" Ir.pp_program p)
  done

(* Randomised fuzz on top (new seed each run). *)
let prop_differential =
  QCheck.Test.make ~name:"OoO processors match the reference simulator" ~count:15
    (QCheck.make ~print:(Format.asprintf "%a" Ir.pp_program) gen_program)
    (fun p -> check_program p = None)

let suites =
  [
    ( "differential",
      [
        Alcotest.test_case "fixed corpus, all configurations" `Slow test_fixed_corpus;
        QCheck_alcotest.to_alcotest prop_differential;
      ] );
  ]
