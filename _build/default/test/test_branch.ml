open Riq_isa
open Riq_branch

(* ---- Bimod ---- *)

let test_bimod_saturation () =
  let b = Bimod.create 16 in
  let pc = 0x1000 in
  Alcotest.(check int) "init weakly not-taken" 1 (Bimod.counter b ~pc);
  Alcotest.(check bool) "predicts not-taken" false (Bimod.predict b ~pc);
  Bimod.update b ~pc ~taken:true;
  Alcotest.(check bool) "one taken flips" true (Bimod.predict b ~pc);
  Bimod.update b ~pc ~taken:true;
  Bimod.update b ~pc ~taken:true;
  Alcotest.(check int) "saturates at 3" 3 (Bimod.counter b ~pc);
  Bimod.update b ~pc ~taken:false;
  Alcotest.(check bool) "hysteresis" true (Bimod.predict b ~pc);
  Bimod.update b ~pc ~taken:false;
  Bimod.update b ~pc ~taken:false;
  Bimod.update b ~pc ~taken:false;
  Alcotest.(check int) "saturates at 0" 0 (Bimod.counter b ~pc)

let test_bimod_aliasing () =
  let b = Bimod.create 16 in
  (* PCs 16 entries apart share a counter (aliasing); adjacent ones don't. *)
  Bimod.update b ~pc:0 ~taken:true;
  Bimod.update b ~pc:0 ~taken:true;
  Alcotest.(check bool) "alias" true (Bimod.predict b ~pc:(16 * 4));
  Alcotest.(check bool) "neighbour" false (Bimod.predict b ~pc:4)

(* ---- Btb ---- *)

let test_btb_basic () =
  let b = Btb.create ~sets:4 ~ways:2 in
  Alcotest.(check (option int)) "cold" None (Btb.lookup b ~pc:0x100);
  Btb.update b ~pc:0x100 ~target:0x500;
  Alcotest.(check (option int)) "hit" (Some 0x500) (Btb.lookup b ~pc:0x100);
  Btb.update b ~pc:0x100 ~target:0x600;
  Alcotest.(check (option int)) "retarget" (Some 0x600) (Btb.lookup b ~pc:0x100)

let test_btb_eviction () =
  let b = Btb.create ~sets:1 ~ways:2 in
  Btb.update b ~pc:0x0 ~target:1;
  Btb.update b ~pc:0x4 ~target:2;
  ignore (Btb.lookup b ~pc:0x0); (* refresh *)
  Btb.update b ~pc:0x8 ~target:3; (* evicts 0x4 *)
  Alcotest.(check (option int)) "kept" (Some 1) (Btb.lookup b ~pc:0x0);
  Alcotest.(check (option int)) "evicted" None (Btb.lookup b ~pc:0x4);
  Alcotest.(check (option int)) "new" (Some 3) (Btb.lookup b ~pc:0x8)

(* ---- Ras ---- *)

let test_ras_stack () =
  let r = Ras.create 4 in
  Alcotest.(check (option int)) "empty pop" None (Ras.pop r);
  Ras.push r 10;
  Ras.push r 20;
  Alcotest.(check int) "depth" 2 (Ras.depth r);
  Alcotest.(check (option int)) "lifo" (Some 20) (Ras.pop r);
  Alcotest.(check (option int)) "lifo 2" (Some 10) (Ras.pop r)

let test_ras_overflow () =
  let r = Ras.create 2 in
  Ras.push r 1;
  Ras.push r 2;
  Ras.push r 3; (* overwrites oldest *)
  Alcotest.(check (option int)) "top" (Some 3) (Ras.pop r);
  Alcotest.(check (option int)) "second" (Some 2) (Ras.pop r);
  Alcotest.(check (option int)) "oldest gone" None (Ras.pop r)

let test_ras_checkpoint () =
  let r = Ras.create 4 in
  Ras.push r 10;
  let ck = Ras.checkpoint r in
  Ras.push r 20;
  ignore (Ras.pop r);
  ignore (Ras.pop r);
  Ras.restore r ck;
  Alcotest.(check (option int)) "restored top" (Some 10) (Ras.pop r)

(* ---- Gshare ---- *)

let test_gshare_learns_pattern () =
  let g = Gshare.create ~entries:256 ~history_bits:4 in
  let pc = 0x40 in
  (* alternating pattern T N T N: gshare separates by history. *)
  for _ = 1 to 40 do
    Gshare.update g ~pc ~taken:true;
    Gshare.update g ~pc ~taken:false
  done;
  let p1 = Gshare.predict g ~pc in
  Gshare.update g ~pc ~taken:p1;
  let p2 = Gshare.predict g ~pc in
  Alcotest.(check bool) "alternation learned" true (p1 <> p2)

(* ---- Predictor ---- *)

let test_predictor_branch_flow () =
  let p = Predictor.create Predictor.baseline in
  let pc = 0x1000 in
  let insn = Insn.Br (Beq, Reg.r 1, Reg.r 2, -4) in
  let d = Predictor.lookup p ~pc ~insn in
  Alcotest.(check bool) "cold not taken" false d.Predictor.taken;
  Predictor.resolve p ~pc ~insn ~taken:true ~target:0x0FF4;
  let d = Predictor.lookup p ~pc ~insn in
  Alcotest.(check bool) "trained taken" true d.Predictor.taken;
  Alcotest.(check (option int)) "static target" (Some 0x0FF4) d.Predictor.target

let test_predictor_call_return () =
  let p = Predictor.create Predictor.baseline in
  let d = Predictor.lookup p ~pc:0x2000 ~insn:(Insn.Jal 0x1000) in
  Alcotest.(check (option int)) "call target" (Some 0x4000) d.Predictor.target;
  let d = Predictor.lookup p ~pc:0x4010 ~insn:(Insn.Jr Reg.ra) in
  Alcotest.(check bool) "return uses RAS" true d.Predictor.used_ras;
  Alcotest.(check (option int)) "return target" (Some 0x2004) d.Predictor.target

let test_predictor_indirect () =
  let p = Predictor.create Predictor.baseline in
  let insn = Insn.Jr (Reg.r 5) in
  let d = Predictor.lookup p ~pc:0x3000 ~insn in
  Alcotest.(check (option int)) "unknown target" None d.Predictor.target;
  Predictor.resolve p ~pc:0x3000 ~insn ~taken:true ~target:0x8000;
  let d = Predictor.lookup p ~pc:0x3000 ~insn in
  Alcotest.(check (option int)) "btb learned" (Some 0x8000) d.Predictor.target

let test_predictor_checkpoint () =
  let p = Predictor.create Predictor.baseline in
  ignore (Predictor.lookup p ~pc:0x100 ~insn:(Insn.Jal 0x400));
  let ck = Predictor.checkpoint p in
  ignore (Predictor.lookup p ~pc:0x1010 ~insn:(Insn.Jr Reg.ra)); (* pops *)
  Predictor.restore p ck;
  let d = Predictor.lookup p ~pc:0x1010 ~insn:(Insn.Jr Reg.ra) in
  Alcotest.(check (option int)) "restored return" (Some 0x104) d.Predictor.target

let test_predictor_counts () =
  let p = Predictor.create Predictor.baseline in
  ignore (Predictor.lookup p ~pc:0 ~insn:(Insn.Br (Beq, 1, 2, 1)));
  ignore (Predictor.lookup p ~pc:4 ~insn:(Insn.Alu (Add, 1, 2, 3)));
  Alcotest.(check int) "non-ctrl free" 1 (Predictor.dir_lookups p);
  Predictor.resolve p ~pc:0 ~insn:(Insn.Br (Beq, 1, 2, 1)) ~taken:true ~target:8;
  Alcotest.(check int) "updates" 1 (Predictor.dir_updates p)

(* qcheck: bimod counter never leaves [0,3] *)
let prop_bimod_range =
  QCheck.Test.make ~name:"bimod counter stays in range" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 100) bool)
    (fun updates ->
      let b = Bimod.create 4 in
      List.for_all
        (fun taken ->
          Bimod.update b ~pc:0 ~taken;
          let c = Bimod.counter b ~pc:0 in
          c >= 0 && c <= 3)
        updates)

(* qcheck: RAS behaves like a bounded stack that drops the bottom *)
let prop_ras_vs_model =
  QCheck.Test.make ~name:"RAS matches bounded-stack model" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 60) (option (int_bound 1000)))
    (fun ops ->
      let r = Ras.create 4 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              Ras.push r v;
              model := v :: List.filteri (fun i _ -> i < 3) !model;
              true
          | None -> (
              let got = Ras.pop r in
              match !model with
              | [] -> got = None
              | v :: rest ->
                  model := rest;
                  got = Some v))
        ops)

let suites =
  [
    ( "branch",
      [
        Alcotest.test_case "bimod saturation" `Quick test_bimod_saturation;
        Alcotest.test_case "bimod aliasing" `Quick test_bimod_aliasing;
        Alcotest.test_case "btb basic" `Quick test_btb_basic;
        Alcotest.test_case "btb eviction" `Quick test_btb_eviction;
        Alcotest.test_case "ras stack" `Quick test_ras_stack;
        Alcotest.test_case "ras overflow" `Quick test_ras_overflow;
        Alcotest.test_case "ras checkpoint" `Quick test_ras_checkpoint;
        Alcotest.test_case "gshare pattern" `Quick test_gshare_learns_pattern;
        Alcotest.test_case "predictor branch flow" `Quick test_predictor_branch_flow;
        Alcotest.test_case "predictor call/return" `Quick test_predictor_call_return;
        Alcotest.test_case "predictor indirect" `Quick test_predictor_indirect;
        Alcotest.test_case "predictor checkpoint" `Quick test_predictor_checkpoint;
        Alcotest.test_case "predictor counters" `Quick test_predictor_counts;
        QCheck_alcotest.to_alcotest prop_bimod_range;
        QCheck_alcotest.to_alcotest prop_ras_vs_model;
      ] );
  ]
