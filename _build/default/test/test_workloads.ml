open Riq_loopir
open Riq_workloads

let test_all_present () =
  Alcotest.(check (list string))
    "Table 2 order"
    [ "adi"; "aps"; "btrix"; "eflux"; "tomcat"; "tsf"; "vpenta"; "wss" ]
    (List.map (fun w -> w.Workloads.name) Workloads.all)

let test_all_validate () =
  List.iter
    (fun w ->
      match Ir.validate w.Workloads.ir with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Workloads.name m)
    Workloads.all

let test_all_compile () =
  List.iter
    (fun w ->
      let p = Workloads.program w in
      Alcotest.(check bool)
        (w.Workloads.name ^ " non-trivial")
        true
        (Array.length p.Riq_asm.Program.code > 50);
      let o = Workloads.optimized w in
      Alcotest.(check bool)
        (w.Workloads.name ^ " optimized compiles")
        true
        (Array.length o.Riq_asm.Program.code > 50))
    Workloads.all

(* The paper's per-benchmark classification (Section 3): aps, tsf and wss
   are dominated by loops a 32-entry queue captures; the other five need
   128 or 256 entries for their dominant loops. *)
let innermost_sizes w =
  List.filter_map
    (fun li -> if li.Codegen.li_innermost then Some li.Codegen.li_body_insns else None)
    (Workloads.loop_profile w)

let test_small_loop_benchmarks () =
  List.iter
    (fun name ->
      let sizes = innermost_sizes (Workloads.find name) in
      Alcotest.(check bool)
        (name ^ " has a 32-capturable loop")
        true
        (List.exists (fun s -> s <= 32) sizes);
      Alcotest.(check bool)
        (name ^ " dominant loops fit 32")
        true
        (List.for_all (fun s -> s <= 32) sizes))
    [ "aps"; "tsf"; "wss" ]

let test_large_loop_benchmarks () =
  List.iter
    (fun name ->
      let sizes = innermost_sizes (Workloads.find name) in
      Alcotest.(check bool)
        (name ^ " has a loop beyond 64 entries")
        true
        (List.exists (fun s -> s > 64) sizes))
    [ "adi"; "eflux"; "tomcat"; "vpenta" ]

let test_btrix_call_loop () =
  (* btrix's dominant loop is statically tiny but dynamically ~90
     instructions because of the procedure call (Section 2.2.2) *)
  let w = Workloads.find "btrix" in
  let sizes =
    List.map (fun li -> (li.Codegen.li_var, li.Codegen.li_body_insns)) (Workloads.loop_profile w)
  in
  match List.assoc_opt "jj" sizes with
  | Some s -> Alcotest.(check bool) "call loop is statically small" true (s <= 8)
  | None -> Alcotest.fail "btrix jj loop missing"

let test_distribution_effect () =
  (* Section 4 targets: distribution must shrink the dominant bodies of
     at least vpenta and tomcat below 64. *)
  List.iter
    (fun name ->
      let w = Workloads.find name in
      let _, infos = Codegen.compile_info (Workloads.optimized_ir w) in
      let inner =
        List.filter_map
          (fun li -> if li.Codegen.li_innermost then Some li.Codegen.li_body_insns else None)
          infos
      in
      Alcotest.(check bool)
        (name ^ " distributed loops fit 64")
        true
        (List.for_all (fun s -> s <= 64) inner))
    [ "vpenta"; "tomcat"; "adi" ]

let test_find () =
  Alcotest.(check string) "find" "tsf" (Workloads.find "tsf").Workloads.name;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Workloads.find "nope");
       false
     with Not_found -> true)

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "table 2 contents" `Quick test_all_present;
        Alcotest.test_case "all validate" `Quick test_all_validate;
        Alcotest.test_case "all compile" `Quick test_all_compile;
        Alcotest.test_case "small-loop class" `Quick test_small_loop_benchmarks;
        Alcotest.test_case "large-loop class" `Quick test_large_loop_benchmarks;
        Alcotest.test_case "btrix call loop" `Quick test_btrix_call_loop;
        Alcotest.test_case "distribution shrinks bodies" `Quick test_distribution_effect;
        Alcotest.test_case "find" `Quick test_find;
      ] );
  ]

let test_interchange_on_workloads () =
  (* the pass must at least run and preserve array contents wherever it
     fires on the real kernels *)
  List.iter
    (fun w ->
      let p', n = Riq_loopir.Interchange.interchange_program w.Workloads.ir in
      if n > 0 then begin
        let run p =
          let prog = Codegen.compile p in
          let m = Riq_interp.Machine.create prog in
          match Riq_interp.Machine.run ~limit:50_000_000 m with
          | Riq_interp.Machine.Halted -> (prog, m)
          | _ -> Alcotest.failf "%s did not halt" w.Workloads.name
        in
        let prog1, m1 = run w.Workloads.ir in
        let prog2, m2 = run p' in
        List.iter
          (fun (a : Riq_loopir.Ir.array_decl) ->
            let nwords = List.fold_left ( * ) 1 a.Riq_loopir.Ir.a_dims in
            let b1 =
              Option.get
                (Riq_asm.Program.address_of prog1 ("g_" ^ a.Riq_loopir.Ir.a_name))
            in
            let b2 =
              Option.get
                (Riq_asm.Program.address_of prog2 ("g_" ^ a.Riq_loopir.Ir.a_name))
            in
            for k = 0 to nwords - 1 do
              if
                Riq_mem.Store.read_word (Riq_interp.Machine.mem m1) (b1 + (4 * k))
                <> Riq_mem.Store.read_word (Riq_interp.Machine.mem m2) (b2 + (4 * k))
              then
                Alcotest.failf "%s: %s[%d] differs after interchange" w.Workloads.name
                  a.Riq_loopir.Ir.a_name k
            done)
          w.Workloads.ir.Riq_loopir.Ir.arrays
      end)
    Workloads.all

let extra_suites =
  [
    ( "workload-transforms",
      [ Alcotest.test_case "interchange preserves semantics" `Slow test_interchange_on_workloads ] );
  ]
