open Riq_ooo
open Riq_core
open Riq_harness
open Riq_workloads

let test_run_simulate () =
  let w = Workloads.find "tsf" in
  let r = Run.simulate ~check:true Config.reuse (Workloads.program w) in
  Alcotest.(check bool) "checked" true (r.Run.arch_ok = Some true);
  Alcotest.(check bool) "total covers groups" true
    (r.Run.total_power
    > r.Run.icache_power +. r.Run.bpred_power +. r.Run.iq_power +. r.Run.overhead_power);
  Alcotest.(check bool) "gating" true (r.Run.stats.Processor.gated_fraction > 0.5)

let test_reduction () =
  Alcotest.(check (float 1e-9)) "half" 50. (Run.reduction 10. 5.);
  Alcotest.(check (float 1e-9)) "zero base" 0. (Run.reduction 0. 5.);
  Alcotest.(check (float 1e-9)) "increase" (-10.) (Run.reduction 10. 11.)

(* A reduced sweep exercises every figure printer. *)
let small_sweep =
  lazy
    (Sweep.run ~check:false ~sizes:[ 32; 64 ]
       ~benchmarks:[ Workloads.find "tsf"; Workloads.find "wss" ]
       ())

let test_sweep_cells () =
  let s = Lazy.force small_sweep in
  let c = Sweep.cell s ~bench:"tsf" ~size:32 in
  Alcotest.(check bool) "baseline no gating" true
    (c.Sweep.baseline.Run.stats.Processor.gated_cycles = 0);
  Alcotest.(check bool) "reuse gates" true
    (c.Sweep.reuse.Run.stats.Processor.gated_fraction > 0.5);
  Alcotest.(check bool) "unknown bench" true
    (try
       ignore (Sweep.cell s ~bench:"zzz" ~size:32);
       false
     with Invalid_argument _ -> true)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_figures_render () =
  let s = Lazy.force small_sweep in
  let t5 = Riq_util.Table.render (Figures.fig5 s) in
  Alcotest.(check bool) "fig5 rows" true (contains t5 "tsf" && contains t5 "average");
  let t6 = Riq_util.Table.render (Figures.fig6 s) in
  Alcotest.(check bool) "fig6 series" true
    (contains t6 "Icache" && contains t6 "Bpred" && contains t6 "IssueQueue"
   && contains t6 "Overhead");
  let t7 = Riq_util.Table.render (Figures.fig7 s) in
  Alcotest.(check bool) "fig7" true (contains t7 "IQ 64");
  let t8 = Riq_util.Table.render (Figures.fig8 s) in
  Alcotest.(check bool) "fig8" true (contains t8 "wss")

let test_table1_text () =
  let t = Figures.table1 () in
  Alcotest.(check bool) "issue queue line" true (contains t "Issue Queue        64 entries");
  Alcotest.(check bool) "fu line" true (contains t "4 IALU, 1 IMULT, 4 FPALU, 1 FPMULT")

let test_table2 () =
  let t = Riq_util.Table.render (Figures.table2 ()) in
  List.iter
    (fun w -> Alcotest.(check bool) w.Workloads.name true (contains t w.Workloads.name))
    Workloads.all

let test_fig5_values_sane () =
  let s = Lazy.force small_sweep in
  List.iter
    (fun (bench, per_size) ->
      List.iter
        (fun (_, c) ->
          let g = c.Sweep.reuse.Run.stats.Processor.gated_fraction in
          Alcotest.(check bool) (bench ^ " gating in [0,1]") true (g >= 0. && g <= 1.))
        per_size)
    s.Sweep.cells

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "run simulate" `Quick test_run_simulate;
        Alcotest.test_case "reduction" `Quick test_reduction;
        Alcotest.test_case "sweep cells" `Slow test_sweep_cells;
        Alcotest.test_case "figure printers" `Slow test_figures_render;
        Alcotest.test_case "table 1 text" `Quick test_table1_text;
        Alcotest.test_case "table 2" `Quick test_table2;
        Alcotest.test_case "fig5 sanity" `Slow test_fig5_values_sane;
      ] );
  ]
