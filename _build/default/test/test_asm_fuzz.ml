(* Assembly-level differential fuzzing.

   The IR-level generator (test_differential.ml) cannot produce sub-word
   memory operations, unaligned-in-word accesses, store/load width
   mixtures, or pathologically mispredicting branch patterns. This
   generator works at the instruction level: a fixed loop skeleton whose
   trip counts guarantee termination, with randomized straight-line bodies
   whose memory accesses are confined to a scratch buffer by masking the
   address register. Every program must produce identical architectural
   state on the reference simulator and on the out-of-order cores. *)

open Riq_util
open Riq_isa
open Riq_asm
open Riq_interp
open Riq_ooo
open Riq_core

let buf_words = 64

(* Registers the generator may freely use as data; r20/r21 are loop
   counters, r19 the buffer base, r1 reserved for the assembler. *)
let data_regs = [| 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 |]

let gen_body rng b =
  let reg () = Reg.r (Rng.choose rng data_regs) in
  (* A data-dependent but in-bounds address, aligned to [align] bytes:
     mask the offset before adding the buffer base. *)
  let emit_masked_addr ?(align = 1) dst =
    let mask = ((buf_words * 4) - 1) land lnot (align - 1) in
    Builder.emit b (Insn.Alui (And, dst, reg (), mask));
    Builder.emit b (Insn.Alu (Add, dst, dst, Reg.r 19))
  in
  let n = Rng.int_in rng 3 10 in
  for _ = 1 to n do
    match Rng.int rng 14 with
    | 0 -> Builder.emit b (Insn.Alu (Add, reg (), reg (), reg ()))
    | 1 -> Builder.emit b (Insn.Alu (Sub, reg (), reg (), reg ()))
    | 2 -> Builder.emit b (Insn.Alu (Xor, reg (), reg (), reg ()))
    | 3 -> Builder.emit b (Insn.Alui (Add, reg (), reg (), Rng.int_in rng (-100) 100))
    | 4 -> Builder.emit b (Insn.Shift (Sll, reg (), reg (), Rng.int rng 5))
    | 5 -> Builder.emit b (Insn.Mul (reg (), reg (), reg ()))
    | 6 ->
        (* aligned word store then word load *)
        let a = Reg.r 12 in
        emit_masked_addr ~align:4 a;
        Builder.emit b (Insn.Sw (reg (), a, 0));
        Builder.emit b (Insn.Lw (reg (), a, 0))
    | 7 ->
        let a = Reg.r 12 in
        emit_masked_addr a;
        Builder.emit b (Insn.Sb (reg (), a, 0));
        Builder.emit b (Insn.Lbu (reg (), a, 0))
    | 8 ->
        let a = Reg.r 12 in
        emit_masked_addr a;
        Builder.emit b (Insn.Sb (reg (), a, 1));
        Builder.emit b (Insn.Lb (reg (), a, 1))
    | 9 ->
        (* halfword at a 2-aligned offset *)
        let a = Reg.r 12 in
        emit_masked_addr ~align:2 a;
        Builder.emit b (Insn.Sh (reg (), a, 2));
        Builder.emit b (Insn.Lhu (reg (), a, 2))
    | 10 ->
        (* overlapping widths: byte store under a word load *)
        let a = Reg.r 12 in
        emit_masked_addr ~align:4 a;
        Builder.emit b (Insn.Sb (reg (), a, Rng.int rng 4));
        Builder.emit b (Insn.Lw (reg (), a, 0))
    | 11 ->
        (* a data-dependent branch over one instruction: frequent
           mispredictions in reuse mode *)
        let skip = Builder.fresh_label b "skip" in
        Builder.emit b (Insn.Alui (And, Reg.r 13, reg (), 1));
        Builder.br b Insn.Bne (Reg.r 13) Reg.zero skip;
        Builder.emit b (Insn.Alui (Add, reg (), reg (), 17));
        Builder.label b skip
    | 12 -> Builder.emit b (Insn.Alu (Slt, reg (), reg (), reg ()))
    | _ ->
        (* procedure call *)
        Builder.jal b "leaf"
  done

let gen_program rng =
  let b = Builder.create () in
  Builder.data_space b "fuzzbuf" (buf_words + 4);
  Builder.la b (Reg.r 19) "fuzzbuf";
  (* seed data registers deterministically *)
  Array.iteri
    (fun i r -> Builder.li b (Reg.r r) ((i * 2654435761) land 0xFFFF))
    data_regs;
  (* outer loop * inner loop, counted down: always terminates *)
  let outer_trips = Rng.int_in rng 2 6 in
  let inner_trips = Rng.int_in rng 4 40 in
  Builder.li b (Reg.r 20) outer_trips;
  Builder.label b "outer";
  Builder.li b (Reg.r 21) inner_trips;
  Builder.label b "inner";
  gen_body rng b;
  Builder.emit b (Insn.Alui (Add, Reg.r 21, Reg.r 21, -1));
  Builder.br b Insn.Bgtz (Reg.r 21) Reg.zero "inner";
  Builder.emit b (Insn.Alui (Add, Reg.r 20, Reg.r 20, -1));
  Builder.br b Insn.Bgtz (Reg.r 20) Reg.zero "outer";
  Builder.emit b Insn.Halt;
  (* a leaf procedure some bodies call *)
  Builder.label b "leaf";
  Builder.emit b (Insn.Alui (Add, Reg.r 14, Reg.r 14, 5));
  Builder.emit b (Insn.Alu (Xor, Reg.r 15, Reg.r 14, Reg.r 2));
  Builder.emit b (Insn.Jr Reg.ra);
  Builder.finish b

let configs =
  [
    ("baseline", Config.baseline);
    ("reuse-16", Config.with_iq_size Config.reuse 16);
    ("reuse-64", Config.reuse);
    ("loopcache", Config.loop_cache 64);
  ]

let check_one program =
  let m = Machine.create program in
  match Machine.run ~limit:5_000_000 m with
  | Machine.Insn_limit | Machine.Bad_pc _ -> Some "reference did not halt"
  | Machine.Halted ->
      let golden = Machine.arch_state m in
      List.fold_left
        (fun acc (name, cfg) ->
          match acc with
          | Some _ -> acc
          | None -> (
              let p = Processor.create cfg program in
              match Processor.run ~cycle_limit:20_000_000 p with
              | Processor.Cycle_limit -> Some (name ^ ": cycle limit")
              | Processor.Halted ->
                  if Machine.equal_arch golden (Processor.arch_state p) then None
                  else
                    Some
                      (Format.asprintf "%s: %a" name
                         (fun ppf () ->
                           Machine.pp_arch_diff ppf golden (Processor.arch_state p))
                         ())))
        None configs

let test_asm_corpus () =
  let rng = Rng.create 0xA5EED in
  for i = 1 to 40 do
    let program = gen_program rng in
    match check_one program with
    | None -> ()
    | Some err -> Alcotest.failf "asm fuzz program %d failed: %s" i err
  done

let suites =
  [
    ( "asm-fuzz",
      [ Alcotest.test_case "40 random asm programs, all configs" `Slow test_asm_corpus ] );
  ]
