(* Compiler optimization walkthrough (Section 4 of the paper): take the
   vpenta kernel, whose dominant loop body is too large for the baseline
   64-entry issue queue, apply loop distribution, and show how the smaller
   distributed loops become capturable — raising gated cycles and power
   savings.

   Run with: dune exec examples/compiler_opt.exe *)

open Riq_ooo
open Riq_core
open Riq_loopir
open Riq_workloads

let profile label ir =
  let _, infos = Codegen.compile_info ir in
  Printf.printf "%s loop bodies (instructions):\n" label;
  List.iter
    (fun li ->
      Printf.printf "  %-6s depth=%d  %4d insns  %s\n" li.Codegen.li_var li.Codegen.li_depth
        li.Codegen.li_body_insns
        (if li.Codegen.li_body_insns <= 64 then "fits IQ-64" else "too large for IQ-64"))
    infos;
  print_newline ()

let measure label program =
  let run cfg =
    let p = Processor.create cfg program in
    (match Processor.run p with
    | Processor.Halted -> ()
    | Processor.Cycle_limit -> failwith "cycle limit");
    Processor.stats p
  in
  let base = run Config.baseline in
  let reuse = run Config.reuse in
  Printf.printf "%-10s gated=%5.1f%%  power: %.1f -> %.1f (%.1f%% reduction)  IPC: %.2f -> %.2f\n"
    label
    (100. *. reuse.Processor.gated_fraction)
    base.Processor.avg_power reuse.Processor.avg_power
    (100. *. (1. -. (reuse.Processor.avg_power /. base.Processor.avg_power)))
    base.Processor.ipc reuse.Processor.ipc

let () =
  let w = Workloads.find "vpenta" in
  profile "original" w.Workloads.ir;
  let opt = Workloads.optimized_ir w in
  profile "distributed" opt;
  print_endline "Effect at the baseline 64-entry issue queue:";
  measure "original" (Workloads.program w);
  measure "optimized" (Codegen.compile opt)
