(* Power report: side-by-side per-component power of the conventional and
   reusable issue queues on one benchmark, in the style of the paper's
   Figure 6 discussion — showing where the savings come from (gated
   instruction cache, predictor lookups and decoder; partially-updated
   issue queue) and what the reuse hardware costs (LRL, NBLT, detector).

   Run with: dune exec examples/power_report.exe [bench] *)

open Riq_power
open Riq_ooo
open Riq_core
open Riq_workloads

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tsf" in
  let w = Workloads.find bench in
  let program = Workloads.program w in
  let run cfg =
    let p = Processor.create cfg program in
    (match Processor.run p with
    | Processor.Halted -> ()
    | Processor.Cycle_limit -> failwith "cycle limit");
    p
  in
  let base = run Config.baseline in
  let reuse = run Config.reuse in
  let ab = Processor.account base and ar = Processor.account reuse in
  let per_cycle acct c =
    Account.energy_of acct c /. float_of_int (Account.cycles acct)
  in
  Printf.printf "%s: baseline %.1f units/cycle, reuse %.1f units/cycle (%.1f%% reduction)\n"
    bench (Account.avg_power ab) (Account.avg_power ar)
    (100. *. (1. -. (Account.avg_power ar /. Account.avg_power ab)));
  Printf.printf "front-end gated %.1f%% of cycles\n\n"
    (100. *. (Processor.stats reuse).Processor.gated_fraction);
  Printf.printf "%-12s %10s %10s %10s\n" "component" "baseline" "reuse" "delta";
  Array.iter
    (fun c ->
      let b = per_cycle ab c and r = per_cycle ar c in
      if b > 0.05 || r > 0.05 then
        Printf.printf "%-12s %10.2f %10.2f %+9.1f%%\n" (Component.name c) b r
          (if b = 0. then Float.infinity else 100. *. ((r -. b) /. b)))
    Component.all;
  Printf.printf "\ngroups (per cycle):\n";
  Array.iter
    (fun g ->
      Printf.printf "  %-12s %8.2f -> %8.2f\n" (Component.group_name g)
        (Account.group_power ab g) (Account.group_power ar g))
    Component.groups
