examples/loop_gating.mli:
