examples/quickstart.mli:
