examples/compiler_opt.ml: Codegen Config List Printf Processor Riq_core Riq_loopir Riq_ooo Riq_workloads Workloads
