examples/custom_kernel.ml: Codegen Config Distribute Ir List Machine Printf Processor Riq_core Riq_interp Riq_loopir Riq_ooo Unroll
