examples/compiler_opt.mli:
