examples/power_report.ml: Account Array Component Config Float Printf Processor Riq_core Riq_ooo Riq_power Riq_workloads Sys Workloads
