examples/power_report.mli:
