examples/loop_gating.ml: Config Parse Printf Processor Reuse_state Riq_asm Riq_core Riq_ooo
