examples/quickstart.ml: Config List Machine Option Parse Printf Processor Program Riq_asm Riq_core Riq_interp Riq_mem Riq_ooo Store
