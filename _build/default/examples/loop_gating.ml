(* Loop gating trace: drive the processor cycle by cycle on a small nested
   loop and print every issue-queue state transition (Figure 2 of the
   paper), showing loop detection, the NBLT filtering the non-bufferable
   outer loop, buffering, promotion to Code Reuse, front-end gating, and
   the recovery back to Normal at loop exit.

   Run with: dune exec examples/loop_gating.exe *)

open Riq_asm
open Riq_ooo
open Riq_core

(* An inner loop (bufferable) inside an outer loop (non-bufferable: the
   inner loop is detected during its buffering), as in Figure 4. *)
let source = {|
start:
    li   r20, 0            # outer index
outer:
    li   r21, 0            # inner index
    li   r22, 40           # inner trip count
    la   r23, data
inner:
    sll  r2, r21, 2
    add  r2, r2, r23
    lw   r3, 0(r2)
    add  r24, r24, r3
    addi r21, r21, 1
    slt  r4, r21, r22
    bne  r4, r0, inner
    addi r20, r20, 1
    slti r5, r20, 12
    bne  r5, r0, outer
    halt
.space data 40
|}

let state_name = function
  | Reuse_state.Normal -> "Normal"
  | Reuse_state.Buffering -> "Loop-Buffering"
  | Reuse_state.Reusing -> "Code-Reuse"

let () =
  let program = Parse.program_exn source in
  let p = Processor.create Config.reuse program in
  let last_state = ref Reuse_state.Normal in
  let transitions = ref 0 in
  while (not (Processor.halted p)) && Processor.cycles p < 100_000 do
    Processor.step_cycle p;
    let r = Processor.reuse_state p in
    if r.Reuse_state.state <> !last_state && !transitions < 40 then begin
      incr transitions;
      Printf.printf "cycle %6d  %-14s -> %-14s" (Processor.cycles p)
        (state_name !last_state)
        (state_name r.Reuse_state.state);
      (match r.Reuse_state.state with
      | Reuse_state.Buffering ->
          Printf.printf "  (loop %#x..%#x detected)" r.Reuse_state.head r.Reuse_state.tail
      | Reuse_state.Reusing ->
          Printf.printf "  (%d iterations buffered; front-end gated)"
            r.Reuse_state.iters_buffered
      | Reuse_state.Normal -> ());
      print_newline ();
      last_state := r.Reuse_state.state
    end
  done;
  let st = Processor.stats p in
  Printf.printf
    "\nfinished: %d cycles, %d instructions, gated %.1f%% of cycles\n"
    st.Processor.cycles st.Processor.committed
    (100. *. st.Processor.gated_fraction);
  Printf.printf
    "buffering: %d attempts, %d revokes (NBLT filtered %d re-detections), %d promotions\n"
    st.Processor.buffer_attempts st.Processor.revokes
    (Processor.reuse_state p).Reuse_state.n_nblt_filtered st.Processor.promotions
