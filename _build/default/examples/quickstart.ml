(* Quickstart: assemble a small RIQ32 program, validate it on the
   functional reference simulator, then run it on the modelled processor
   with the conventional issue queue and with the reusable-instruction
   issue queue of Hu et al. (DATE 2004), and compare cycles, gating and
   power.

   Run with: dune exec examples/quickstart.exe *)

open Riq_asm
open Riq_mem
open Riq_interp
open Riq_ooo
open Riq_core

(* A dot product over 512 elements: one tight, capturable loop. *)
let source = {|
start:
    li   r2, 0            # i
    li   r3, 512          # n
    la   r4, xs
    la   r5, ys
loop:
    sll  r6, r2, 2
    add  r7, r6, r4
    l.s  f1, 0(r7)
    add  r8, r6, r5
    l.s  f2, 0(r8)
    fmul f3, f1, f2
    fadd f0, f0, f3
    addi r2, r2, 1
    slt  r9, r2, r3
    bne  r9, r0, loop
    la   r10, result
    s.s  f0, 0(r10)
    halt
.float xs 1.5 2.5 3.5 0.5
.space xs_rest 508
.float ys 2.0 1.0 0.5 4.0
.space ys_rest 508
.space result 1
|}

let () =
  let program = Parse.program_exn source in

  (* 1. Golden model: execute and capture the architectural result. *)
  let machine = Machine.create program in
  (match Machine.run machine with
  | Machine.Halted -> ()
  | Machine.Insn_limit | Machine.Bad_pc _ -> failwith "reference simulation failed");
  let golden = Machine.arch_state machine in
  Printf.printf "reference: %d instructions, dot product = %g\n\n"
    (Machine.insn_count machine)
    (Store.read_float (Machine.mem machine)
       (Option.get (Program.address_of program "result")));

  (* 2. Cycle-level simulations: conventional vs. reusable issue queue. *)
  List.iter
    (fun (label, cfg) ->
      let p = Processor.create cfg program in
      (match Processor.run p with
      | Processor.Halted -> ()
      | Processor.Cycle_limit -> failwith "cycle limit exceeded");
      let st = Processor.stats p in
      let ok = Machine.equal_arch golden (Processor.arch_state p) in
      Printf.printf
        "%-12s cycles=%6d  IPC=%.2f  gated=%5.1f%%  power=%6.1f  arch-match=%b\n" label
        st.Processor.cycles st.Processor.ipc
        (100. *. st.Processor.gated_fraction)
        st.Processor.avg_power ok)
    [ ("baseline", Config.baseline); ("reuse", Config.reuse) ]
