(* Writing your own kernel: the downstream-user path.

   1. Express the computation in the loop-nest IR.
   2. Validate and compile it to RIQ32.
   3. Check the loop profile against the issue-queue capacity.
   4. If the dominant loop is too large, apply loop distribution (or see
      how unrolling makes things worse).
   5. Measure gating/power/IPC on the conventional vs. reusable queue,
      with the architectural result validated against the reference
      simulator.

   Run with: dune exec examples/custom_kernel.exe *)

open Riq_interp
open Riq_ooo
open Riq_core
open Riq_loopir

(* A 1-D reaction-diffusion step: u' = u + k*(laplacian u) + r*u*(1-u),
   written deliberately as several statements so distribution has work. *)
let n = 256
let steps = 10

let kernel =
  let ic c = Ir.Iconst c and iv v = Ir.Ivar v in
  let ld a s = Ir.Fload (a, s) and fc c = Ir.Fconst c in
  let ( +. ) a b = Ir.Fadd (a, b)
  and ( -. ) a b = Ir.Fsub (a, b)
  and ( *. ) a b = Ir.Fmul (a, b) in
  {
    Ir.arrays =
      [
        { Ir.a_name = "u"; a_dims = [ n + 2 ]; a_init = `Index_pattern; a_float = true };
        { Ir.a_name = "lap"; a_dims = [ n + 2 ]; a_init = `Zero; a_float = true };
        { Ir.a_name = "growth"; a_dims = [ n + 2 ]; a_init = `Zero; a_float = true };
        { Ir.a_name = "un"; a_dims = [ n + 2 ]; a_init = `Zero; a_float = true };
      ];
    int_scalars = [];
    float_scalars = [];
    procs = [];
    main =
      [
        Ir.Sfor
          {
            var = "t";
            lo = ic 0;
            hi = ic steps;
            body =
              [
                Ir.Sfor
                  {
                    var = "i";
                    lo = ic 1;
                    hi = ic (n + 1);
                    body =
                      [
                        Ir.Sfstore
                          ( "lap",
                            [ iv "i" ],
                            ld "u" [ Ir.Iadd (iv "i", ic 1) ]
                            +. ld "u" [ Ir.Isub (iv "i", ic 1) ]
                            -. (fc 2.0 *. ld "u" [ iv "i" ]) );
                        Ir.Sfstore
                          ( "growth",
                            [ iv "i" ],
                            fc 0.01 *. ld "u" [ iv "i" ]
                            *. (fc 1.0 -. (fc 0.001 *. ld "u" [ iv "i" ])) );
                        Ir.Sfstore
                          ( "un",
                            [ iv "i" ],
                            ld "u" [ iv "i" ]
                            +. (fc 0.2 *. ld "lap" [ iv "i" ])
                            +. ld "growth" [ iv "i" ] );
                      ];
                  };
                Ir.Sfor
                  {
                    var = "k";
                    lo = ic 1;
                    hi = ic (n + 1);
                    body = [ Ir.Sfstore ("u", [ iv "k" ], ld "un" [ iv "k" ]) ];
                  };
              ];
          };
      ];
  }

let profile label ir =
  let _, infos = Codegen.compile_info ir in
  Printf.printf "%s:\n" label;
  List.iter
    (fun li ->
      if li.Codegen.li_innermost then
        Printf.printf "  innermost loop %-4s %3d instructions  %s\n" li.Codegen.li_var
          li.Codegen.li_body_insns
          (if li.Codegen.li_body_insns <= 64 then "(capturable at IQ-64)" else "(too large)"))
    infos

let measure label program =
  let run cfg =
    let p = Processor.create cfg program in
    (match Processor.run p with
    | Processor.Halted -> ()
    | Processor.Cycle_limit -> failwith "cycle limit");
    p
  in
  (* validate against the golden model first *)
  let m = Machine.create program in
  (match Machine.run m with
  | Machine.Halted -> ()
  | _ -> failwith "reference did not halt");
  let reuse = run Config.reuse in
  assert (Machine.equal_arch (Machine.arch_state m) (Processor.arch_state reuse));
  let base = run Config.baseline in
  let sb = Processor.stats base and sr = Processor.stats reuse in
  Printf.printf "  %-10s gated=%5.1f%%  power %.1f -> %.1f (%.1f%%)  IPC %.2f -> %.2f\n" label
    (100. *. sr.Processor.gated_fraction)
    sb.Processor.avg_power sr.Processor.avg_power
    (100. *. (1. -. (sr.Processor.avg_power /. sb.Processor.avg_power)))
    sb.Processor.ipc sr.Processor.ipc

let () =
  (match Ir.validate kernel with
  | Ok () -> ()
  | Error m -> failwith ("kernel does not validate: " ^ m));
  profile "original kernel" kernel;
  let distributed = Distribute.distribute_program kernel in
  profile "after loop distribution" distributed;
  print_endline "\nmeasured on the 64-entry configuration (reuse vs conventional):";
  measure "original" (Codegen.compile kernel);
  measure "distributed" (Codegen.compile distributed);
  let unrolled = Unroll.unroll_program ~factor:4 kernel in
  profile "\nafter 4x unrolling (for contrast)" unrolled;
  measure "unrolled" (Codegen.compile unrolled)
