open Riq_mem
open Riq_branch

type geometry = {
  iq_entries : int;
  rob_entries : int;
  lsq_entries : int;
  fetch_width : int;
  issue_width : int;
  icache : Cache.config;
  dcache : Cache.config;
  l2 : Cache.config;
  itlb : Cache.config;
  dtlb : Cache.config;
  bpred : Predictor.config;
  nblt_entries : int;
  l0_icache : Cache.config option;
  loop_cache_entries : int; (* 0 = absent *)
}

let baseline_geometry =
  let h = Hierarchy.baseline in
  {
    iq_entries = 64;
    rob_entries = 64;
    lsq_entries = 32;
    fetch_width = 4;
    issue_width = 4;
    icache = h.Hierarchy.l1i;
    dcache = h.Hierarchy.l1d;
    l2 = h.Hierarchy.l2;
    itlb = h.Hierarchy.itlb;
    dtlb = h.Hierarchy.dtlb;
    bpred = Predictor.baseline;
    nblt_entries = 8;
    l0_icache = None;
    loop_cache_entries = 0;
  }

type t = {
  geometry : geometry;
  per_access : float array; (* indexed by Component.index *)
  per_idle : float array;
  clock : float;
}

(* Sub-linear growth of access energy with row count: decoders and bitline
   segmentation keep large arrays from costing linearly in rows. *)
let row_factor rows = 1.0 +. (0.1 *. sqrt (float_of_int rows))

(* Relative cost of one read of a set-associative cache: all ways of one
   set are read out in parallel (tag + data). *)
let cache_factor (c : Cache.config) =
  let data_bits = float_of_int (8 * c.Cache.line_bytes * c.Cache.ways) in
  let tag_bits = float_of_int (24 * c.Cache.ways) in
  (data_bits +. tag_bits) *. row_factor c.Cache.sets /. 1000.

let iq_issue_width = 4 (* nominal ports for idle-residual scaling *)

let create geometry =
  let g = geometry in
  let base = baseline_geometry in
  let per_access = Array.make Component.count 0. in
  let set c v = per_access.(Component.index c) <- v in
  let scale f = float_of_int f in
  (* Coefficients calibrated against the baseline breakdown; each entry is
     base-energy * (geometric factor relative to the Table 1 geometry). *)
  set Icache (11.0 *. (cache_factor g.icache /. cache_factor base.icache));
  (* Related-work fetch-side structures: a tiny filter cache costs a small
     fraction of an L1I access; a loop-cache read is a narrow RAM access. *)
  (match g.l0_icache with
  | Some c -> set L0cache (11.0 *. (cache_factor c /. cache_factor base.icache))
  | None -> set L0cache 0. (* absent: no energy, no idle residual *));
  set Loopcache
    (if g.loop_cache_entries > 0 then
       1.0 +. (0.1 *. sqrt (float_of_int g.loop_cache_entries))
     else 0.);
  set Dcache (14.0 *. (cache_factor g.dcache /. cache_factor base.dcache));
  set L2 (100.0 *. (cache_factor g.l2 /. cache_factor base.l2));
  set Itlb (1.2 *. (row_factor g.itlb.Cache.sets /. row_factor base.itlb.Cache.sets));
  set Dtlb (1.2 *. (row_factor g.dtlb.Cache.sets /. row_factor base.dtlb.Cache.sets));
  set Decoder 1.6;
  set Bpred_dir
    (1.9 *. (row_factor g.bpred.Predictor.entries /. row_factor base.bpred.Predictor.entries));
  set Btb
    (4.0
    *. (float_of_int g.bpred.Predictor.btb_ways /. float_of_int base.bpred.Predictor.btb_ways)
    *. (row_factor g.bpred.Predictor.btb_sets /. row_factor base.bpred.Predictor.btb_sets));
  set Ras 3.0;
  set Rename 0.8;
  (* Wakeup is a CAM: every entry compares the broadcast tag, so energy is
     linear in the number of entries. *)
  set Iq_wakeup (2.2 *. (scale g.iq_entries /. scale base.iq_entries));
  (* Payload RAM: wide entries whose read/write energy grows near-linearly
     with the entry count (one bank per block of entries). *)
  set Iq_payload (0.73 *. ((scale g.iq_entries /. scale base.iq_entries) ** 0.85));
  set Iq_select (1.1 *. (scale g.iq_entries /. scale base.iq_entries));
  set Lsq (3.75 *. (scale g.lsq_entries /. scale base.lsq_entries));
  set Rob (0.86 *. (row_factor g.rob_entries /. row_factor base.rob_entries));
  set Regfile 1.4;
  set Ialu 2.7;
  set Imult 12.0;
  set Fpalu 4.0;
  set Fpmult 8.0;
  set Resultbus 1.5;
  set Clock 0.;
  (* Overhead structures of the proposed design (Section 2.2): 17 bits per
     issue-queue entry of LRL storage, an 8-entry CAM for the NBLT, and the
     detector/reuse-pointer comparators. *)
  set Lrl (0.20 *. (scale g.iq_entries /. scale base.iq_entries));
  set Nblt (0.15 *. (scale g.nblt_entries /. scale base.nblt_entries));
  set Reuse_logic 0.30;
  (* Clock tree: a fixed trunk plus a small term that grows with the sized
     structures (window + ROB), charged once per cycle. *)
  let clock =
    26.0
    *. (0.90
       +. (0.05 *. (scale g.iq_entries /. scale base.iq_entries))
       +. (0.05 *. (scale g.rob_entries /. scale base.rob_entries)))
  in
  (* cc3 idle residual: 10 % of the nominal per-cycle maximum (access
     energy times nominal port count). *)
  let nominal_ports c =
    match c with
    | Component.Icache | L0cache | Loopcache | Itlb | Bpred_dir | Btb | Ras | Iq_select
    | Nblt | Reuse_logic ->
        1.
    | Decoder | Rename | Iq_payload | Rob | Lrl -> float_of_int g.fetch_width
    | Iq_wakeup | Resultbus -> float_of_int iq_issue_width
    | Regfile -> float_of_int (2 * g.issue_width)
    | Lsq | Dcache | Dtlb -> 2.
    | L2 -> 1.
    | Ialu -> 4.
    | Imult -> 1.
    | Fpalu -> 4.
    | Fpmult -> 1.
    | Clock -> 0.
  in
  let per_idle =
    Array.mapi
      (fun i e -> 0.10 *. e *. nominal_ports (Component.of_index i))
      per_access
  in
  { geometry; per_access; per_idle; clock }

let geometry t = t.geometry
let energy t c = t.per_access.(Component.index c)
let idle t c = t.per_idle.(Component.index c)
let clock_per_cycle t = t.clock
let iq_partial_update_fraction = 0.4
