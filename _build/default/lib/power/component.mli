(** The power-dissipating structures of the modelled processor, following
    Wattch's decomposition, plus the paper's reuse-support overhead
    structures (logical register list, non-bufferable loop table, detector
    and reuse-pointer logic).

    Components are also grouped the way the paper's Figure 6 reports them:
    instruction cache, branch predictor, issue queue, and overhead. *)

type t =
  | Icache
  | L0cache (** optional filter cache in front of the L1I (related-work baseline) *)
  | Loopcache (** optional fetch-side loop cache (related-work baseline) *)
  | Itlb
  | Decoder
  | Bpred_dir (** bimodal/gshare direction table *)
  | Btb
  | Ras
  | Rename (** map table read/write ports *)
  | Iq_wakeup (** issue-queue tag CAM match *)
  | Iq_payload (** issue-queue RAM read/write (dispatch, issue, collapse) *)
  | Iq_select (** selection arbiter *)
  | Lsq
  | Rob
  | Regfile
  | Ialu
  | Imult
  | Fpalu
  | Fpmult
  | Dcache
  | Dtlb
  | L2
  | Resultbus
  | Clock
  | Lrl (** overhead: logical register list storage *)
  | Nblt (** overhead: non-bufferable loop table CAM *)
  | Reuse_logic (** overhead: loop detector + reuse pointer *)

val count : int
val index : t -> int
val of_index : int -> t
val name : t -> string
val all : t array

type group = G_icache | G_bpred | G_iq | G_overhead | G_other

val group : t -> group
val group_name : group -> string
val groups : group array
