type t = {
  model : Model.t;
  act : float array;
  acc : float array; (* cumulative energy per component *)
  mutable n_cycles : int;
}

let create model =
  {
    model;
    act = Array.make Component.count 0.;
    acc = Array.make Component.count 0.;
    n_cycles = 0;
  }

let model t = t.model
let activity t = t.act
let add t c n = t.act.(Component.index c) <- t.act.(Component.index c) +. n

let clock_idx = Component.index Component.Clock

let tick t =
  t.n_cycles <- t.n_cycles + 1;
  for i = 0 to Component.count - 1 do
    let a = t.act.(i) in
    if a > 0. then begin
      t.acc.(i) <- t.acc.(i) +. (a *. Model.energy t.model (Component.of_index i));
      t.act.(i) <- 0.
    end
    else t.acc.(i) <- t.acc.(i) +. Model.idle t.model (Component.of_index i)
  done;
  t.acc.(clock_idx) <- t.acc.(clock_idx) +. Model.clock_per_cycle t.model

let cycles t = t.n_cycles
let total_energy t = Array.fold_left ( +. ) 0. t.acc
let energy_of t c = t.acc.(Component.index c)

let group_energy t g =
  let sum = ref 0. in
  Array.iter
    (fun c -> if Component.group c = g then sum := !sum +. energy_of t c)
    Component.all;
  !sum

let avg_power t = if t.n_cycles = 0 then 0. else total_energy t /. float_of_int t.n_cycles

let group_power t g =
  if t.n_cycles = 0 then 0. else group_energy t g /. float_of_int t.n_cycles

let breakdown t =
  let total = total_energy t in
  let entries =
    Array.map
      (fun c -> (c, if total = 0. then 0. else energy_of t c /. total))
      Component.all
  in
  Array.sort (fun (_, a) (_, b) -> compare b a) entries;
  entries
