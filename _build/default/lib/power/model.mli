open Riq_mem
open Riq_branch

(** Per-access energy model, Wattch-style.

    Energies are computed in arbitrary consistent units ("pJ") from
    structure geometry, so they scale when a sweep changes the issue-queue
    size or a cache configuration. The absolute coefficients were calibrated
    once so that the baseline machine's activity-weighted breakdown matches
    the published Wattch distribution for an R10000-class core (clock about
    a quarter of total power, L1 caches about a fifth, the
    window/rename/ROB complex about a fifth, ...). The paper reports only
    relative savings, which depend on this breakdown and on which accesses
    are gated, not on absolute Joules.

    Idle energies implement Wattch's cc3 conditional-clocking style: a
    structure with no access in a cycle still draws 10 % of its nominal
    per-cycle maximum. *)

type geometry = {
  iq_entries : int;
  rob_entries : int;
  lsq_entries : int;
  fetch_width : int;
  issue_width : int;
  icache : Cache.config;
  dcache : Cache.config;
  l2 : Cache.config;
  itlb : Cache.config;
  dtlb : Cache.config;
  bpred : Predictor.config;
  nblt_entries : int;
  l0_icache : Cache.config option;
      (** optional filter cache (related-work baseline) *)
  loop_cache_entries : int; (** 0 = no loop cache (related-work baseline) *)
}

val baseline_geometry : geometry
(** Table 1 of the paper (64-entry issue queue). *)

type t

val create : geometry -> t
val geometry : t -> geometry

val energy : t -> Component.t -> float
(** Energy of one access (one port operation) of the component. *)

val idle : t -> Component.t -> float
(** cc3 residual charged for a cycle with no access. *)

val clock_per_cycle : t -> float
(** Clock-tree energy charged every cycle unconditionally. *)

val iq_partial_update_fraction : float
(** Fraction of a full issue-queue payload write charged when reuse-mode
    dispatch updates only the register fields and the ROB pointer
    (Section 2.4 of the paper). *)
