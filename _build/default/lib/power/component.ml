type t =
  | Icache
  | L0cache
  | Loopcache
  | Itlb
  | Decoder
  | Bpred_dir
  | Btb
  | Ras
  | Rename
  | Iq_wakeup
  | Iq_payload
  | Iq_select
  | Lsq
  | Rob
  | Regfile
  | Ialu
  | Imult
  | Fpalu
  | Fpmult
  | Dcache
  | Dtlb
  | L2
  | Resultbus
  | Clock
  | Lrl
  | Nblt
  | Reuse_logic

let all =
  [|
    Icache; L0cache; Loopcache; Itlb; Decoder; Bpred_dir; Btb; Ras; Rename; Iq_wakeup; Iq_payload; Iq_select;
    Lsq; Rob; Regfile; Ialu; Imult; Fpalu; Fpmult; Dcache; Dtlb; L2; Resultbus; Clock;
    Lrl; Nblt; Reuse_logic;
  |]

let count = Array.length all

let index = function
  | Icache -> 0
  | L0cache -> 1
  | Loopcache -> 2
  | Itlb -> 3
  | Decoder -> 4
  | Bpred_dir -> 5
  | Btb -> 6
  | Ras -> 7
  | Rename -> 8
  | Iq_wakeup -> 9
  | Iq_payload -> 10
  | Iq_select -> 11
  | Lsq -> 12
  | Rob -> 13
  | Regfile -> 14
  | Ialu -> 15
  | Imult -> 16
  | Fpalu -> 17
  | Fpmult -> 18
  | Dcache -> 19
  | Dtlb -> 20
  | L2 -> 21
  | Resultbus -> 22
  | Clock -> 23
  | Lrl -> 24
  | Nblt -> 25
  | Reuse_logic -> 26

let of_index i =
  if i < 0 || i >= count then invalid_arg "Component.of_index";
  all.(i)

let name = function
  | Icache -> "icache"
  | L0cache -> "l0-icache"
  | Loopcache -> "loop-cache"
  | Itlb -> "itlb"
  | Decoder -> "decoder"
  | Bpred_dir -> "bpred-dir"
  | Btb -> "btb"
  | Ras -> "ras"
  | Rename -> "rename"
  | Iq_wakeup -> "iq-wakeup"
  | Iq_payload -> "iq-payload"
  | Iq_select -> "iq-select"
  | Lsq -> "lsq"
  | Rob -> "rob"
  | Regfile -> "regfile"
  | Ialu -> "ialu"
  | Imult -> "imult"
  | Fpalu -> "fpalu"
  | Fpmult -> "fpmult"
  | Dcache -> "dcache"
  | Dtlb -> "dtlb"
  | L2 -> "l2"
  | Resultbus -> "resultbus"
  | Clock -> "clock"
  | Lrl -> "lrl"
  | Nblt -> "nblt"
  | Reuse_logic -> "reuse-logic"

type group = G_icache | G_bpred | G_iq | G_overhead | G_other

let group = function
  | Icache | L0cache | Loopcache -> G_icache
  | Bpred_dir | Btb | Ras -> G_bpred
  | Iq_wakeup | Iq_payload | Iq_select -> G_iq
  | Lrl | Nblt | Reuse_logic -> G_overhead
  | Itlb | Decoder | Rename | Lsq | Rob | Regfile | Ialu | Imult | Fpalu | Fpmult
  | Dcache | Dtlb | L2 | Resultbus | Clock ->
      G_other

let group_name = function
  | G_icache -> "icache"
  | G_bpred -> "bpred"
  | G_iq -> "issue-queue"
  | G_overhead -> "overhead"
  | G_other -> "other"

let groups = [| G_icache; G_bpred; G_iq; G_overhead; G_other |]
