(** Cycle-by-cycle energy accounting.

    The simulator fills {!activity} with this cycle's access counts
    (fractional counts are allowed — reuse-mode partial updates charge a
    fraction of a write) and calls {!tick} once per cycle. [tick] charges
    [count * energy] for active components, the cc3 idle residual for
    inactive ones, the unconditional clock-tree energy, and clears the
    activity array for the next cycle. *)

type t

val create : Model.t -> t
val model : t -> Model.t

val activity : t -> float array
(** Scratch array indexed by [Component.index], reset by every [tick]. *)

val add : t -> Component.t -> float -> unit
(** Convenience: bump this cycle's activity count. *)

val tick : t -> unit

val cycles : t -> int
val total_energy : t -> float
val energy_of : t -> Component.t -> float
val group_energy : t -> Component.group -> float

val avg_power : t -> float
(** Total energy divided by cycles — the paper's "overall power (per
    cycle)" metric. *)

val group_power : t -> Component.group -> float

val breakdown : t -> (Component.t * float) array
(** Per-component share of total energy, descending. *)
