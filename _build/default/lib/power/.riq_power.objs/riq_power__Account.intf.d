lib/power/account.mli: Component Model
