lib/power/model.ml: Array Cache Component Hierarchy Predictor Riq_branch Riq_mem
