lib/power/component.ml: Array
