lib/power/model.mli: Cache Component Predictor Riq_branch Riq_mem
