lib/power/component.mli:
