lib/power/account.ml: Array Component Model
