lib/interp/semantics.ml: Bits Float Insn Int32 Riq_isa Riq_util
