lib/interp/machine.mli: Format Program Reg Riq_asm Riq_isa Riq_mem Store
