lib/interp/semantics.mli: Insn Riq_isa
