lib/interp/machine.ml: Array Bits Format Hashtbl Insn Int32 List Program Reg Riq_asm Riq_isa Riq_mem Riq_util Semantics Store
