open Riq_util
open Riq_isa

let alu op a b =
  match op with
  | Insn.Add -> Bits.add32 a b
  | Sub -> Bits.sub32 a b
  | And -> Bits.of_i32 (a land b)
  | Or -> Bits.of_i32 (a lor b)
  | Xor -> Bits.of_i32 (a lxor b)
  | Nor -> Bits.of_i32 (lnot (a lor b))
  | Slt -> if Bits.of_i32 a < Bits.of_i32 b then 1 else 0
  | Sltu -> if Bits.to_u32 a < Bits.to_u32 b then 1 else 0

let alui_imm op imm =
  match op with
  | Insn.Add | Slt | Sltu -> Bits.sign_extend imm ~width:16
  | And | Or | Xor -> imm land 0xFFFF
  | Sub | Nor -> invalid_arg "Semantics.alui_imm: sub/nor have no immediate form"

let shift op v amount =
  let amount = amount land 31 in
  match op with
  | Insn.Sll -> Bits.of_i32 (v lsl amount)
  | Srl -> Bits.of_i32 (Bits.to_u32 v lsr amount)
  | Sra -> Bits.of_i32 (Bits.of_i32 v asr amount)

let mul a b = Bits.mul32 a b

let div a b =
  if Bits.of_i32 b = 0 then 0
  else begin
    let a = Bits.of_i32 a and b = Bits.of_i32 b in
    (* OCaml integer division truncates toward zero, matching MIPS. *)
    Bits.of_i32 (a / b)
  end

let to_single f = Int32.float_of_bits (Int32.bits_of_float f)

let fpu op a b =
  let a = to_single a and b = to_single b in
  let r =
    match op with
    | Insn.Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
    | Fsqrt -> sqrt a
    | Fneg -> -.a
    | Fabs -> Float.abs a
    | Fmov -> a
  in
  to_single r

let fcmp op a b =
  let a = to_single a and b = to_single b in
  let holds = match op with Insn.Feq -> a = b | Flt -> a < b | Fle -> a <= b in
  if holds then 1 else 0

let cvt_s_w v = to_single (float_of_int (Bits.of_i32 v))

let cvt_w_s f =
  let f = to_single f in
  if Float.is_nan f then 0
  else if f >= 2147483647.0 then 0x7FFFFFFF
  else if f <= -2147483648.0 then Bits.of_i32 0x80000000
  else int_of_float f

let branch_taken cond a b =
  let a = Bits.of_i32 a and b = Bits.of_i32 b in
  match cond with
  | Insn.Beq -> a = b
  | Bne -> a <> b
  | Blez -> a <= 0
  | Bgtz -> a > 0
  | Bltz -> a < 0
  | Bgez -> a >= 0
