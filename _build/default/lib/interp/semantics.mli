open Riq_isa

(** Architectural semantics of RIQ32, shared between the functional
    interpreter and the out-of-order core's execute stage.

    Keeping the value computations in one module is what makes the
    differential tests meaningful: both simulators call the same functions,
    so any end-state divergence is a pipeline bug, never a semantics
    mismatch. *)

val alu : Insn.alu_op -> int -> int -> int
(** 32-bit signed results; [Sltu] compares the operands' unsigned views. *)

val alui_imm : Insn.alu_op -> int -> int
(** Immediate view seen by the ALU: sign-extended for [Add]/[Slt]/[Sltu],
    zero-extended (16-bit) for the bitwise operations. The assembler stores
    the immediate in canonical form already; this is the identity for
    in-range values and exists to centralise the convention. *)

val shift : Insn.shift_op -> int -> int -> int
(** [shift op value amount]; amount is masked to 5 bits. *)

val mul : int -> int -> int
(** Low 32 bits of the signed product. *)

val div : int -> int -> int
(** Signed quotient; division by zero yields 0 (the modelled machine does
    not trap). *)

val fpu : Insn.fpu_op -> float -> float -> float
(** Computed in single precision: operands and result are rounded through
    IEEE-754 binary32. *)

val fcmp : Insn.fcmp_op -> float -> float -> int
(** 1 when the predicate holds, else 0. *)

val cvt_s_w : int -> float
val cvt_w_s : float -> int
(** Truncation toward zero; saturates at the 32-bit bounds. *)

val branch_taken : Insn.cond -> int -> int -> bool
(** [branch_taken cond rs_value rt_value]. *)

val to_single : float -> float
(** Round a float through single precision. *)
