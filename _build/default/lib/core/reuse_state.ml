type state = Normal | Buffering | Reusing

type t = {
  mutable state : state;
  mutable head : int;
  mutable tail : int;
  mutable iter_count : int;
  mutable call_depth : int;
  mutable first_buffered_seq : int;
  mutable iters_buffered : int;
  mutable n_detections : int;
  mutable n_nblt_filtered : int;
  mutable n_buffer_attempts : int;
  mutable n_revokes : int;
  mutable n_promotions : int;
  mutable n_reuse_exits : int;
}

let create () =
  {
    state = Normal;
    head = 0;
    tail = 0;
    iter_count = 0;
    call_depth = 0;
    first_buffered_seq = -1;
    iters_buffered = 0;
    n_detections = 0;
    n_nblt_filtered = 0;
    n_buffer_attempts = 0;
    n_revokes = 0;
    n_promotions = 0;
    n_reuse_exits = 0;
  }

let start_buffering t ~head ~tail =
  assert (t.state = Normal);
  t.state <- Buffering;
  t.head <- head;
  t.tail <- tail;
  t.iter_count <- 0;
  t.call_depth <- 0;
  t.first_buffered_seq <- -1;
  t.iters_buffered <- 0;
  t.n_buffer_attempts <- t.n_buffer_attempts + 1

let revoke t =
  assert (t.state = Buffering);
  t.state <- Normal;
  t.n_revokes <- t.n_revokes + 1

let promote t =
  assert (t.state = Buffering);
  t.state <- Reusing;
  t.n_promotions <- t.n_promotions + 1

let exit_reuse t =
  assert (t.state = Reusing);
  t.state <- Normal;
  t.n_reuse_exits <- t.n_reuse_exits + 1

let in_loop t ~pc = pc >= t.head && pc <= t.tail
