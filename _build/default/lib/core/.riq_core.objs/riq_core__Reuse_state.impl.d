lib/core/reuse_state.ml:
