lib/core/detector.mli: Insn Riq_isa
