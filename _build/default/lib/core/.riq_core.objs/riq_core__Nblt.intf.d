lib/core/nblt.mli:
