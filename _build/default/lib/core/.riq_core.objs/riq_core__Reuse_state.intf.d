lib/core/reuse_state.mli:
