lib/core/loopcache.ml: Insn Riq_isa
