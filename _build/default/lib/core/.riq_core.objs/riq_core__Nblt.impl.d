lib/core/nblt.ml: Array
