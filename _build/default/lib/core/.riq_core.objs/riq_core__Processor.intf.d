lib/core/processor.mli: Config Hierarchy Loopcache Machine Nblt Program Reuse_state Riq_asm Riq_interp Riq_mem Riq_ooo Riq_power
