lib/core/detector.ml: Insn Riq_isa
