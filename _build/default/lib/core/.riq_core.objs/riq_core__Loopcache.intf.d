lib/core/loopcache.mli: Insn Riq_isa
