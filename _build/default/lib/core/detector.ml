open Riq_isa

type verdict =
  | Not_a_loop
  | Too_large of int
  | Capturable of { head : int; tail : int; span : int }

let examine ~iq_size ~pc insn =
  let candidate =
    match Insn.kind insn with
    | Insn.K_branch | K_jump -> Insn.ctrl_target insn ~pc
    | K_call | K_return | K_ijump | K_int | K_fp | K_load | K_store | K_nop | K_halt -> None
  in
  match candidate with
  | Some target when target <= pc ->
      let span = ((pc - target) / 4) + 1 in
      if span <= iq_size then Capturable { head = target; tail = pc; span }
      else Too_large span
  | Some _ | None -> Not_a_loop
