(** Issue-queue operating state (Figure 2 of the paper) and the bookkeeping
    registers of the reuse engine: R_loophead, R_looptail, the
    iteration-size counter, and the procedure-call depth tracked while
    buffering.

    Transitions are driven by the pipeline ({!Processor}); this module
    centralises the registers and the statistics the experiments report
    (buffering attempts, revokes, promotions, reuse exits). *)

type state =
  | Normal
  | Buffering (** Loop Buffering: renamed loop instructions are retained *)
  | Reusing (** Code Reuse: the front-end is gated *)

type t = {
  mutable state : state;
  mutable head : int; (** R_loophead: address of the first loop instruction *)
  mutable tail : int; (** R_looptail: address of the loop-ending instruction *)
  mutable iter_count : int; (** instructions dispatched in the current buffering iteration *)
  mutable call_depth : int; (** procedure nesting while buffering *)
  mutable first_buffered_seq : int; (** -1 until the first buffered dispatch *)
  mutable iters_buffered : int;
  mutable n_detections : int;
  mutable n_nblt_filtered : int;
  mutable n_buffer_attempts : int;
  mutable n_revokes : int;
  mutable n_promotions : int;
  mutable n_reuse_exits : int;
}

val create : unit -> t

val start_buffering : t -> head:int -> tail:int -> unit
(** Normal -> Buffering (capturable loop detected, NBLT miss). *)

val revoke : t -> unit
(** Buffering -> Normal. *)

val promote : t -> unit
(** Buffering -> Reusing. *)

val exit_reuse : t -> unit
(** Reusing -> Normal. *)

val in_loop : t -> pc:int -> bool
(** Whether [pc] lies within [head, tail]. *)
