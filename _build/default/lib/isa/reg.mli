(** Logical registers of the RIQ32 ISA.

    A single flat namespace covers both files so that rename tables and the
    paper's logical register list (LRL) can index registers uniformly:
    [0..31] are the integer registers [r0..r31] ([r0] is hard-wired to zero),
    [32..63] are the floating-point registers [f0..f31]. *)

type t = int

val count : int
(** Total number of logical registers (64). *)

val r : int -> t
(** [r n] is integer register [rn], [0 <= n <= 31]. *)

val f : int -> t
(** [f n] is floating-point register [fn], [0 <= n <= 31]. *)

val zero : t
(** [r0], always reads as integer 0; writes are discarded. *)

val ra : t
(** [r31], the link register written by [jal]/[jalr]. *)

val sp : t
(** [r29], conventional stack pointer. *)

val is_fp : t -> bool
val index : t -> int
(** Position within its own file, [0..31]. *)

val to_string : t -> string
(** ["r7"], ["f12"], ... *)

val of_string : string -> t option
(** Parses the [to_string] syntax. *)

val pp : Format.formatter -> t -> unit
