(** Binary encoding of RIQ32 instructions.

    Every instruction occupies one 32-bit word. Three MIPS-like formats are
    used: R-type ([op rs rt rd shamt funct]) for register operations, I-type
    ([op rs rt imm16]) for immediates, loads/stores and branches, and J-type
    ([op target26]) for direct jumps. Encoding is a bijection on the valid
    subset: [decode (encode i) = Ok i] for every well-formed [i], and
    [encode] raises [Invalid_argument] if an immediate or shift amount does
    not fit its field. *)

val encode : Insn.t -> int
(** Encode to an unsigned 32-bit word. *)

val decode : int -> (Insn.t, string) result
(** Decode a 32-bit word; [Error] describes the malformed field. *)

val decode_exn : int -> Insn.t
(** Like {!decode} but raises [Failure] on malformed words. *)

val imm_fits : signed:bool -> int -> bool
(** Whether an immediate fits a 16-bit field of the given signedness. *)
