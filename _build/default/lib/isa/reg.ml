type t = int

let count = 64

let r n =
  if n < 0 || n > 31 then invalid_arg "Reg.r";
  n

let f n =
  if n < 0 || n > 31 then invalid_arg "Reg.f";
  32 + n

let zero = 0
let ra = 31
let sp = 29
let is_fp t = t >= 32
let index t = if is_fp t then t - 32 else t

let to_string t =
  if t < 0 || t >= count then invalid_arg "Reg.to_string";
  Printf.sprintf "%c%d" (if is_fp t then 'f' else 'r') (index t)

let of_string s =
  let len = String.length s in
  if len < 2 then None
  else
    match (s.[0], int_of_string_opt (String.sub s 1 (len - 1))) with
    | 'r', Some n when n >= 0 && n <= 31 -> Some (r n)
    | 'f', Some n when n >= 0 && n <= 31 -> Some (f n)
    | _, _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
