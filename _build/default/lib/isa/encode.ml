open Riq_util

(* Opcode map (field [31:26]):
     0  R-type integer (funct selects)     1  R-type floating point
     2  addi   3 andi   4 ori    5 xori    6 slti   7 sltiu   8 lui
     9  lw    10 sw    11 l.s   12 s.s
    13 beq   14 bne   15 blez  16 bgtz   17 bltz  18 bgez
    19 j     20 jal
    21 lb    22 lbu   23 lh    24 lhu   25 sb    26 sh
   Integer functs: 0 add 1 sub 2 and 3 or 4 xor 5 nor 6 slt 7 sltu
     8 sll 9 srl 10 sra 11 sllv 12 srlv 13 srav 14 mul 15 div
     16 jr 17 jalr 18 nop 19 halt
   FP functs: 0 fadd 1 fsub 2 fmul 3 fdiv 4 fsqrt 5 fneg 6 fabs 7 fmov
     8 feq 9 flt 10 fle 11 cvtsw 12 cvtws *)

let imm_fits ~signed v =
  if signed then v >= -32768 && v <= 32767 else v >= 0 && v <= 65535

let check_imm ~signed v =
  if not (imm_fits ~signed v) then
    invalid_arg (Printf.sprintf "Encode: immediate %d does not fit 16 bits" v)

let check_shamt v =
  if v < 0 || v > 31 then invalid_arg "Encode: shift amount out of range"

let check_target v =
  if v < 0 || v >= 1 lsl 26 then invalid_arg "Encode: jump target out of range"

let r_type ~op ~rs ~rt ~rd ~shamt ~funct =
  (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11) lor (shamt lsl 6) lor funct

let i_type ~op ~rs ~rt ~imm = (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land 0xFFFF)
let j_type ~op ~target = (op lsl 26) lor target

let alu_funct = function
  | Insn.Add -> 0
  | Sub -> 1
  | And -> 2
  | Or -> 3
  | Xor -> 4
  | Nor -> 5
  | Slt -> 6
  | Sltu -> 7

let shift_funct = function Insn.Sll -> 8 | Srl -> 9 | Sra -> 10
let shiftv_funct = function Insn.Sll -> 11 | Srl -> 12 | Sra -> 13

let alui_op = function
  | Insn.Add -> 2
  | And -> 3
  | Or -> 4
  | Xor -> 5
  | Slt -> 6
  | Sltu -> 7
  | Sub | Nor -> invalid_arg "Encode: sub/nor have no immediate form"

let alui_signed = function
  | Insn.Add | Slt | Sltu -> true
  | And | Or | Xor -> false
  | Sub | Nor -> invalid_arg "Encode: sub/nor have no immediate form"

let fpu_funct = function
  | Insn.Fadd -> 0
  | Fsub -> 1
  | Fmul -> 2
  | Fdiv -> 3
  | Fsqrt -> 4
  | Fneg -> 5
  | Fabs -> 6
  | Fmov -> 7

let fcmp_funct = function Insn.Feq -> 8 | Flt -> 9 | Fle -> 10

let br_op = function
  | Insn.Beq -> 13
  | Bne -> 14
  | Blez -> 15
  | Bgtz -> 16
  | Bltz -> 17
  | Bgez -> 18

let fidx = Reg.index

let encode insn =
  match insn with
  | Insn.Alu (op, rd, rs, rt) -> r_type ~op:0 ~rs ~rt ~rd ~shamt:0 ~funct:(alu_funct op)
  | Alui (op, rt, rs, imm) ->
      let signed = alui_signed op in
      check_imm ~signed imm;
      i_type ~op:(alui_op op) ~rs ~rt ~imm
  | Shift (op, rd, rt, shamt) ->
      check_shamt shamt;
      r_type ~op:0 ~rs:0 ~rt ~rd ~shamt ~funct:(shift_funct op)
  | Shiftv (op, rd, rt, rs) -> r_type ~op:0 ~rs ~rt ~rd ~shamt:0 ~funct:(shiftv_funct op)
  | Lui (rt, imm) ->
      check_imm ~signed:false imm;
      i_type ~op:8 ~rs:0 ~rt ~imm
  | Mul (rd, rs, rt) -> r_type ~op:0 ~rs ~rt ~rd ~shamt:0 ~funct:14
  | Div (rd, rs, rt) -> r_type ~op:0 ~rs ~rt ~rd ~shamt:0 ~funct:15
  | Fpu (op, fd, fs, ft) ->
      (* Unary operations ignore [ft]; encode it as f0 so that the decoded
         form is canonical and encode/decode round-trips. *)
      let ft = if Insn.fpu_unary op then 0 else fidx ft in
      r_type ~op:1 ~rs:(fidx fs) ~rt:ft ~rd:(fidx fd) ~shamt:0 ~funct:(fpu_funct op)
  | Fcmp (op, rd, fs, ft) ->
      r_type ~op:1 ~rs:(fidx fs) ~rt:(fidx ft) ~rd ~shamt:0 ~funct:(fcmp_funct op)
  | Cvtsw (fd, rs) -> r_type ~op:1 ~rs ~rt:0 ~rd:(fidx fd) ~shamt:0 ~funct:11
  | Cvtws (rd, fs) -> r_type ~op:1 ~rs:(fidx fs) ~rt:0 ~rd ~shamt:0 ~funct:12
  | Lw (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:9 ~rs:base ~rt ~imm:off
  | Sw (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:10 ~rs:base ~rt ~imm:off
  | Lwf (ft, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:11 ~rs:base ~rt:(fidx ft) ~imm:off
  | Swf (ft, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:12 ~rs:base ~rt:(fidx ft) ~imm:off
  | Br (cond, rs, rt, off) ->
      check_imm ~signed:true off;
      let rt =
        match cond with Beq | Bne -> rt | Blez | Bgtz | Bltz | Bgez -> 0
      in
      i_type ~op:(br_op cond) ~rs ~rt ~imm:off
  | J target ->
      check_target target;
      j_type ~op:19 ~target
  | Jal target ->
      check_target target;
      j_type ~op:20 ~target
  | Lb (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:21 ~rs:base ~rt ~imm:off
  | Lbu (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:22 ~rs:base ~rt ~imm:off
  | Lh (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:23 ~rs:base ~rt ~imm:off
  | Lhu (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:24 ~rs:base ~rt ~imm:off
  | Sb (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:25 ~rs:base ~rt ~imm:off
  | Sh (rt, base, off) ->
      check_imm ~signed:true off;
      i_type ~op:26 ~rs:base ~rt ~imm:off
  | Jr rs -> r_type ~op:0 ~rs ~rt:0 ~rd:0 ~shamt:0 ~funct:16
  | Jalr (rd, rs) -> r_type ~op:0 ~rs ~rt:0 ~rd ~shamt:0 ~funct:17
  | Nop -> r_type ~op:0 ~rs:0 ~rt:0 ~rd:0 ~shamt:0 ~funct:18
  | Halt -> r_type ~op:0 ~rs:0 ~rt:0 ~rd:0 ~shamt:0 ~funct:19

let ( let* ) r f = Result.bind r f

let decode word =
  let open Insn in
  if word < 0 || word > Bits.mask 32 then Error "word out of 32-bit range"
  else begin
    let op = Bits.extract word ~lo:26 ~width:6 in
    let rs = Bits.extract word ~lo:21 ~width:5 in
    let rt = Bits.extract word ~lo:16 ~width:5 in
    let rd = Bits.extract word ~lo:11 ~width:5 in
    let shamt = Bits.extract word ~lo:6 ~width:5 in
    let funct = Bits.extract word ~lo:0 ~width:6 in
    let simm = Bits.sign_extend word ~width:16 in
    let uimm = word land 0xFFFF in
    let target = word land Bits.mask 26 in
    let fr n = Reg.f n in
    let ok_zero_fields cond insn = if cond then Ok insn else Error "non-zero unused field" in
    match op with
    | 0 -> (
        match funct with
        | 0 -> Ok (Insn.Alu (Add, rd, rs, rt))
        | 1 -> Ok (Alu (Sub, rd, rs, rt))
        | 2 -> Ok (Alu (And, rd, rs, rt))
        | 3 -> Ok (Alu (Or, rd, rs, rt))
        | 4 -> Ok (Alu (Xor, rd, rs, rt))
        | 5 -> Ok (Alu (Nor, rd, rs, rt))
        | 6 -> Ok (Alu (Slt, rd, rs, rt))
        | 7 -> Ok (Alu (Sltu, rd, rs, rt))
        | 8 -> ok_zero_fields (rs = 0) (Shift (Sll, rd, rt, shamt))
        | 9 -> ok_zero_fields (rs = 0) (Shift (Srl, rd, rt, shamt))
        | 10 -> ok_zero_fields (rs = 0) (Shift (Sra, rd, rt, shamt))
        | 11 -> ok_zero_fields (shamt = 0) (Shiftv (Sll, rd, rt, rs))
        | 12 -> ok_zero_fields (shamt = 0) (Shiftv (Srl, rd, rt, rs))
        | 13 -> ok_zero_fields (shamt = 0) (Shiftv (Sra, rd, rt, rs))
        | 14 -> Ok (Mul (rd, rs, rt))
        | 15 -> Ok (Div (rd, rs, rt))
        | 16 -> ok_zero_fields (rt = 0 && rd = 0 && shamt = 0) (Jr rs)
        | 17 -> ok_zero_fields (rt = 0 && shamt = 0) (Jalr (rd, rs))
        | 18 -> ok_zero_fields (rs = 0 && rt = 0 && rd = 0 && shamt = 0) Nop
        | 19 -> ok_zero_fields (rs = 0 && rt = 0 && rd = 0 && shamt = 0) Halt
        | _ -> Error (Printf.sprintf "unknown integer funct %d" funct))
    | 1 -> (
        let* () = if shamt = 0 then Ok () else Error "non-zero shamt in FP op" in
        match funct with
        | 0 -> Ok (Insn.Fpu (Fadd, fr rd, fr rs, fr rt))
        | 1 -> Ok (Fpu (Fsub, fr rd, fr rs, fr rt))
        | 2 -> Ok (Fpu (Fmul, fr rd, fr rs, fr rt))
        | 3 -> Ok (Fpu (Fdiv, fr rd, fr rs, fr rt))
        | 4 -> ok_zero_fields (rt = 0) (Fpu (Fsqrt, fr rd, fr rs, fr rt))
        | 5 -> ok_zero_fields (rt = 0) (Fpu (Fneg, fr rd, fr rs, fr rt))
        | 6 -> ok_zero_fields (rt = 0) (Fpu (Fabs, fr rd, fr rs, fr rt))
        | 7 -> ok_zero_fields (rt = 0) (Fpu (Fmov, fr rd, fr rs, fr rt))
        | 8 -> Ok (Fcmp (Feq, rd, fr rs, fr rt))
        | 9 -> Ok (Fcmp (Flt, rd, fr rs, fr rt))
        | 10 -> Ok (Fcmp (Fle, rd, fr rs, fr rt))
        | 11 -> ok_zero_fields (rt = 0) (Cvtsw (fr rd, rs))
        | 12 -> ok_zero_fields (rt = 0) (Cvtws (rd, fr rs))
        | _ -> Error (Printf.sprintf "unknown FP funct %d" funct))
    | 2 -> Ok (Alui (Add, rt, rs, simm))
    | 3 -> Ok (Alui (And, rt, rs, uimm))
    | 4 -> Ok (Alui (Or, rt, rs, uimm))
    | 5 -> Ok (Alui (Xor, rt, rs, uimm))
    | 6 -> Ok (Alui (Slt, rt, rs, simm))
    | 7 -> Ok (Alui (Sltu, rt, rs, simm))
    | 8 -> ok_zero_fields (rs = 0) (Lui (rt, uimm))
    | 9 -> Ok (Lw (rt, rs, simm))
    | 10 -> Ok (Sw (rt, rs, simm))
    | 11 -> Ok (Lwf (fr rt, rs, simm))
    | 12 -> Ok (Swf (fr rt, rs, simm))
    | 13 -> Ok (Br (Beq, rs, rt, simm))
    | 14 -> Ok (Br (Bne, rs, rt, simm))
    | 15 -> ok_zero_fields (rt = 0) (Br (Blez, rs, rt, simm))
    | 16 -> ok_zero_fields (rt = 0) (Br (Bgtz, rs, rt, simm))
    | 17 -> ok_zero_fields (rt = 0) (Br (Bltz, rs, rt, simm))
    | 18 -> ok_zero_fields (rt = 0) (Br (Bgez, rs, rt, simm))
    | 19 -> Ok (J target)
    | 20 -> Ok (Jal target)
    | 21 -> Ok (Lb (rt, rs, simm))
    | 22 -> Ok (Lbu (rt, rs, simm))
    | 23 -> Ok (Lh (rt, rs, simm))
    | 24 -> Ok (Lhu (rt, rs, simm))
    | 25 -> Ok (Sb (rt, rs, simm))
    | 26 -> Ok (Sh (rt, rs, simm))
    | _ -> Error (Printf.sprintf "unknown opcode %d" op)
  end

let decode_exn word =
  match decode word with
  | Ok insn -> insn
  | Error msg -> failwith (Printf.sprintf "Encode.decode_exn: %s (word %08x)" msg word)
