lib/isa/encode.ml: Bits Insn Printf Reg Result Riq_util
