lib/isa/insn.ml: Format Printf Reg
