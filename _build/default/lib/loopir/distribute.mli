(** Loop distribution (Kennedy/McKinley), the Section 4 compiler
    optimization.

    [distribute_program] rewrites every [Sfor] whose body contains more
    than one top-level statement into the maximal sequence of smaller loops
    that preserves all data dependences: a dependence graph is built over
    the body's top-level statements, strongly-connected components must
    stay in one loop, and the component loops are emitted in topological
    order.

    The dependence test is subscript-aware for the common affine form
    [index + constant]: a conflicting array pair with dependence distance
    [d > 0] yields a forward (writer-to-accessor) edge, [d < 0] a backward
    edge, [d = 0] a textual-order edge; provably non-overlapping constant
    subscripts yield no edge; anything unanalysable is treated
    conservatively as a bidirectional edge. Scalars shared between two
    different statements always merge them (no scalar expansion), except
    that loop-index variables — which are written by [Sfor] itself and, by
    convention, never used as data across statements — are exempt.
    Procedure calls contribute the callee's transitive access sets. *)

val distribute_program : Ir.program -> Ir.program
(** Distribute every loop, innermost-first, throughout main and all
    procedures. *)

val distribute_stmt : Ir.program -> Ir.stmt -> Ir.stmt list
(** Distribute one statement (recursively); the program supplies the
    procedure table and the loop-variable universe. *)

(** {2 Exposed for tests} *)

type edge_kind = No_dep | Forward | Backward | Both

val statement_dependence : Ir.program -> loop_var:string -> Ir.stmt -> Ir.stmt -> edge_kind
(** Dependence classification for an ordered pair of body statements
    (first argument textually first): [Forward] means only first-to-second
    edges exist, [Backward] only second-to-first, [Both] a cycle. *)

(** {2 Building blocks shared with the other passes} *)

type distance =
  | Dist of int (** consistent dependence distance along the loop variable *)
  | Any (** every iteration pair may conflict *)
  | Never (** provably disjoint *)
  | Unknown

val access_distance : string -> Ir.access -> Ir.access -> distance
(** [access_distance v write access]: signed distance (accessor iteration
    minus writer iteration) along loop variable [v], for the affine
    subscript forms the analysis understands. *)

val stmt_accesses :
  procs:(string * Ir.stmt list) list ->
  Ir.stmt ->
  string list * Ir.access list * string list * Ir.access list
(** Scalar reads, array reads, scalar writes, array writes of a statement,
    with procedure calls resolved transitively. *)
