(* Loop distribution over the loop-nest IR. See the interface for the
   dependence-test rules. *)

type edge_kind = No_dep | Forward | Backward | Both

(* ---- access-set computation with procedure resolution ---- *)

let rec resolve_accesses procs stmt =
  let rs, ra = Ir.reads_of_stmt stmt in
  let ws, wa = Ir.writes_of_stmt stmt in
  let calls = calls_of stmt in
  List.fold_left
    (fun (rs, ra, ws, wa) name ->
      match List.assoc_opt name procs with
      | None -> (rs, ra, ws, wa)
      | Some body ->
          List.fold_left
            (fun (rs, ra, ws, wa) s ->
              let rs', ra', ws', wa' = resolve_accesses procs s in
              (rs' @ rs, ra' @ ra, ws' @ ws, wa' @ wa))
            (rs, ra, ws, wa) body)
    (rs, ra, ws, wa) calls

and calls_of stmt =
  match stmt with
  | Ir.Scall name -> [ name ]
  | Sfor { body; _ } -> List.concat_map calls_of body
  | Sif (_, a, b) -> List.concat_map calls_of a @ List.concat_map calls_of b
  | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ -> []

(* ---- subscript analysis ---- *)

(* Classify one subscript dimension with respect to the loop variable. *)
type dim_form =
  | Affine of int (* loop_var + constant *)
  | Const of int
  | Invariant of Ir.iexpr (* does not mention the loop variable *)
  | Complex

let rec mentions v (e : Ir.iexpr) =
  match e with
  | Ir.Iconst _ -> false
  | Ivar x -> x = v
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> mentions v a || mentions v b
  | Iload (_, subs) -> List.exists (mentions v) subs

let dim_form v (e : Ir.iexpr) =
  match e with
  | Ir.Iconst c -> Const c
  | Ivar x when x = v -> Affine 0
  | Iadd (Ivar x, Iconst c) when x = v -> Affine c
  | Iadd (Iconst c, Ivar x) when x = v -> Affine c
  | Isub (Ivar x, Iconst c) when x = v -> Affine (-c)
  | e when not (mentions v e) -> Invariant e
  | _ -> Complex

(* Dependence distance between a write access and another access of the
   same array: d = (accessor iteration) - (writer iteration), or the
   special cases below. *)
type distance = Dist of int | Any | Never | Unknown

let access_distance v (w : Ir.access) (o : Ir.access) =
  if w.Ir.arr <> o.Ir.arr then Never
  else if List.length w.Ir.subs <> List.length o.Ir.subs then Unknown
  else begin
    let rec go dist subs =
      match subs with
      | [] -> dist
      | (sw, so) :: rest -> (
          match (dim_form v sw, dim_form v so, dist) with
          | _, _, Never -> Never
          | Affine cw, Affine co, Any -> go (Dist (cw - co)) rest
          | Affine cw, Affine co, Dist d ->
              if cw - co = d then go dist rest else Never
          | Const a, Const b, _ -> if a = b then go dist rest else Never
          | Invariant a, Invariant b, _ ->
              (* Syntactic equality keeps the constraint; different
                 expressions may or may not alias. *)
              if a = b then go dist rest else Unknown
          | Affine _, Const _, _
          | Const _, Affine _, _
          | Affine _, Invariant _, _
          | Invariant _, Affine _, _
          | Const _, Invariant _, _
          | Invariant _, Const _, _
          | Complex, _, _
          | _, Complex, _
          | _, _, Unknown ->
              Unknown)
    in
    go Any (List.combine w.Ir.subs o.Ir.subs)
  end

(* ---- pairwise statement dependence ---- *)

let stmt_accesses ~procs stmt = resolve_accesses procs stmt

let loop_vars_of_program (p : Ir.program) =
  let rec of_stmt acc = function
    | Ir.Sfor { var; body; _ } -> List.fold_left of_stmt (var :: acc) body
    | Sif (_, a, b) -> List.fold_left of_stmt (List.fold_left of_stmt acc a) b
    | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ | Scall _ -> acc
  in
  let acc = List.fold_left of_stmt [] p.Ir.main in
  let acc =
    List.fold_left (fun acc (_, body) -> List.fold_left of_stmt acc body) acc p.Ir.procs
  in
  List.sort_uniq compare acc

let statement_dependence (p : Ir.program) ~loop_var sa sb =
  let index_vars = loop_vars_of_program p in
  let is_data v = not (List.mem v index_vars) in
  let rs_a, ra_a, ws_a, wa_a = resolve_accesses p.Ir.procs sa in
  let rs_b, ra_b, ws_b, wa_b = resolve_accesses p.Ir.procs sb in
  let forward = ref false and backward = ref false in
  (* Scalars: any shared name with a write on either side forces a cycle
     (no scalar expansion is performed). *)
  let scalar_conflict () =
    let touches names v = List.mem v names in
    List.exists (fun v -> is_data v && (touches rs_b v || touches ws_b v)) ws_a
    || List.exists (fun v -> is_data v && (touches rs_a v || touches ws_a v)) ws_b
  in
  if scalar_conflict () then Both
  else begin
    (* Arrays: writer W vs accessor O; a_first is true when the writer is
       the textually-first statement. *)
    let consider ~writer_first (w : Ir.access) (o : Ir.access) =
      match access_distance loop_var w o with
      | Never -> ()
      | Dist d ->
          if d > 0 then if writer_first then forward := true else backward := true
          else if d < 0 then if writer_first then backward := true else forward := true
          else forward := true (* loop-independent: textual order A before B *)
      | Any | Unknown ->
          forward := true;
          backward := true
    in
    List.iter (fun w -> List.iter (fun o -> consider ~writer_first:true w o) (ra_b @ wa_b)) wa_a;
    List.iter (fun w -> List.iter (fun o -> consider ~writer_first:false w o) ra_a) wa_b;
    match (!forward, !backward) with
    | false, false -> No_dep
    | true, false -> Forward
    | false, true -> Backward
    | true, true -> Both
  end

(* ---- strongly connected components (Tarjan) over body statements ---- *)

let sccs n edges =
  (* edges: adjacency list array; returns components in topological order. *)
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      edges.(v);
    if lowlink.(v) = index.(v) then begin
      let comp = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | [] -> continue_ := false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp := w :: !comp;
            if w = v then continue_ := false
      done;
      comps := !comp :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order of the condensed
     graph. *)
  !comps

let rec distribute_stmt (p : Ir.program) stmt =
  match stmt with
  | Ir.Sfor { var; lo; hi; body } -> (
      (* Innermost-first. *)
      let body = List.concat_map (distribute_stmt p) body in
      match body with
      | [] | [ _ ] -> [ Ir.Sfor { var; lo; hi; body } ]
      | _ ->
          let stmts = Array.of_list body in
          let n = Array.length stmts in
          let edges = Array.make n [] in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              match statement_dependence p ~loop_var:var stmts.(i) stmts.(j) with
              | No_dep -> ()
              | Forward -> edges.(i) <- j :: edges.(i)
              | Backward -> edges.(j) <- i :: edges.(j)
              | Both ->
                  edges.(i) <- j :: edges.(i);
                  edges.(j) <- i :: edges.(j)
            done
          done;
          let comps = sccs n edges in
          (* Each component becomes one loop; statements inside keep their
             original order. *)
          List.map
            (fun comp ->
              let comp = List.sort compare comp in
              Ir.Sfor { var; lo; hi; body = List.map (fun i -> stmts.(i)) comp })
            comps)
  | Sif (c, a, b) ->
      [ Ir.Sif (c, List.concat_map (distribute_stmt p) a, List.concat_map (distribute_stmt p) b) ]
  | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ | Scall _ -> [ stmt ]

let distribute_program p =
  {
    p with
    Ir.main = List.concat_map (distribute_stmt p) p.Ir.main;
    procs = List.map (fun (name, body) -> (name, List.concat_map (distribute_stmt p) body)) p.Ir.procs;
  }
