(** Loop interchange for perfect two-level nests, with a direction-vector
    legality test.

    [interchange p nest] swaps the loops of [for i { for j { body } }]
    when (a) the nest is perfect (the outer body is exactly the inner
    loop), (b) the inner bounds do not mention the outer index, and
    (c) no data dependence has direction [(<, >)] — i.e. carried forward
    by the outer loop and backward by the inner — which interchange would
    reverse. Distances are computed with the same affine subscript
    analysis as {!Distribute}; anything unanalysable is conservatively
    treated as illegal.

    Interchange does not change loop-body size, so it is neutral to the
    paper's capturability condition; it changes the {e stride} of the
    innermost accesses, which matters to the data-cache side of the power
    account. It is provided as a third compiler lever next to
    {!Distribute} and {!Unroll}. *)

val interchange : Ir.program -> Ir.stmt -> Ir.stmt option
(** [Some swapped_nest] when legal, [None] otherwise. *)

val interchange_program : Ir.program -> Ir.program * int
(** Swap every legal perfect nest (outermost occurrences, applied once per
    nest); returns the rewritten program and the number of nests
    interchanged. *)
