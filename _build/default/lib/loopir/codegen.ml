open Riq_util
open Riq_isa
open Riq_asm

type loop_info = { li_var : string; li_depth : int; li_body_insns : int; li_innermost : bool }

(* Where a scalar lives. *)
type home = Hreg of Reg.t | Hmem of string

type ctx = {
  b : Builder.t;
  homes : (string, home) Hashtbl.t;
  dims : (string, int list) Hashtbl.t;
  mutable int_temps : int list; (* free registers from r2..r15 *)
  mutable fp_temps : int list; (* free registers from f0..f15 *)
  mutable infos : loop_info list;
  mutable depth : int;
  procs : (string * Ir.stmt list) list;
}

let alloc_int ctx =
  match ctx.int_temps with
  | r :: rest ->
      ctx.int_temps <- rest;
      r
  | [] -> failwith "Codegen: integer temporary pool exhausted"

let alloc_fp ctx =
  match ctx.fp_temps with
  | r :: rest ->
      ctx.fp_temps <- rest;
      r
  | [] -> failwith "Codegen: float temporary pool exhausted"

let free_int ctx r = ctx.int_temps <- r :: ctx.int_temps
let free_fp ctx r = ctx.fp_temps <- r :: ctx.fp_temps

(* A value produced by expression evaluation: the register holding it and
   whether that register is a pool temporary the consumer must free. *)
type ival = { ir : Reg.t; iowned : bool }
type fval = { fr : Reg.t; fowned : bool }

let free_ival ctx v = if v.iowned then free_int ctx v.ir
let free_fval ctx v = if v.fowned then free_fp ctx v.fr

let home ctx name =
  match Hashtbl.find_opt ctx.homes name with
  | Some h -> h
  | None -> failwith (Printf.sprintf "Codegen: no home for %s" name)

let data_label name = "g_" ^ name

let read_int_scalar ctx name =
  match home ctx name with
  | Hreg r -> { ir = r; iowned = false }
  | Hmem label ->
      let r = alloc_int ctx in
      Builder.la ctx.b (Reg.r 1) label;
      Builder.emit ctx.b (Insn.Lw (r, Reg.r 1, 0));
      { ir = r; iowned = true }

let read_fp_scalar ctx name =
  match home ctx name with
  | Hreg r -> { fr = r; fowned = false }
  | Hmem label ->
      let r = alloc_fp ctx in
      Builder.la ctx.b (Reg.r 1) label;
      Builder.emit ctx.b (Insn.Lwf (r, Reg.r 1, 0));
      { fr = r; fowned = true }

let write_int_scalar ctx name (v : ival) =
  (match home ctx name with
  | Hreg r -> if r <> v.ir then Builder.emit ctx.b (Insn.Alu (Add, r, v.ir, Reg.zero))
  | Hmem label ->
      Builder.la ctx.b (Reg.r 1) label;
      Builder.emit ctx.b (Insn.Sw (v.ir, Reg.r 1, 0)));
  free_ival ctx v

let write_fp_scalar ctx name (v : fval) =
  (match home ctx name with
  | Hreg r -> if r <> v.fr then Builder.emit ctx.b (Insn.Fpu (Fmov, r, v.fr, Reg.f 0))
  | Hmem label ->
      Builder.la ctx.b (Reg.r 1) label;
      Builder.emit ctx.b (Insn.Swf (v.fr, Reg.r 1, 0)));
  free_fval ctx v

(* Constant folding over integer expressions: subscript arithmetic on
   constants disappears entirely. *)
let rec const_eval (e : Ir.iexpr) =
  match e with
  | Ir.Iconst n -> Some n
  | Ivar _ | Iload _ -> None
  | Iadd (a, b) -> (
      match (const_eval a, const_eval b) with
      | Some x, Some y -> Some (x + y)
      | _, _ -> None)
  | Isub (a, b) -> (
      match (const_eval a, const_eval b) with
      | Some x, Some y -> Some (x - y)
      | _, _ -> None)
  | Imul (a, b) -> (
      match (const_eval a, const_eval b) with
      | Some x, Some y -> Some (x * y)
      | _, _ -> None)

(* Result register for a binary operation: reuse an owned operand register
   when possible. *)
let result_reg ctx (a : ival) (b : ival) =
  if a.iowned then a.ir else if b.iowned then b.ir else alloc_int ctx

let release_others ctx d (a : ival) (b : ival) =
  if a.iowned && a.ir <> d then free_int ctx a.ir;
  if b.iowned && b.ir <> d then free_int ctx b.ir

let fresult_reg ctx (a : fval) (b : fval) =
  if a.fowned then a.fr else if b.fowned then b.fr else alloc_fp ctx

let frelease_others ctx d (a : fval) (b : fval) =
  if a.fowned && a.fr <> d then free_fp ctx a.fr;
  if b.fowned && b.fr <> d then free_fp ctx b.fr

let rec eval_i ctx (e : Ir.iexpr) : ival =
  match const_eval e with
  | Some n ->
      let d = alloc_int ctx in
      Builder.li ctx.b d n;
      { ir = d; iowned = true }
  | None -> (
      match e with
      | Ir.Iconst _ -> assert false (* handled by const_eval *)
      | Ivar v -> read_int_scalar ctx v
      | Iadd (a, b) -> add_sub ctx `Add a b
      | Isub (a, b) -> add_sub ctx `Sub a b
      | Imul (a, b) -> (
          match (const_eval a, const_eval b) with
          | Some c, None -> mul_const ctx (eval_i ctx b) c
          | None, Some c -> mul_const ctx (eval_i ctx a) c
          | None, None ->
              let va = eval_i ctx a in
              let vb = eval_i ctx b in
              let d = result_reg ctx va vb in
              Builder.emit ctx.b (Insn.Mul (d, va.ir, vb.ir));
              release_others ctx d va vb;
              { ir = d; iowned = true }
          | Some _, Some _ -> assert false)
      | Iload (arr, subs) ->
          let addr = eval_addr ctx arr subs in
          let d = if addr.iowned then addr.ir else alloc_int ctx in
          Builder.emit ctx.b (Insn.Lw (d, addr.ir, 0));
          if addr.iowned && d <> addr.ir then free_int ctx addr.ir;
          { ir = d; iowned = true })

and add_sub ctx op a b =
  (* x + c / x - c become one immediate instruction. *)
  let imm_form =
    match (op, const_eval a, const_eval b) with
    | `Add, Some c, None when Encode.imm_fits ~signed:true c -> Some (b, c)
    | `Add, None, Some c when Encode.imm_fits ~signed:true c -> Some (a, c)
    | `Sub, None, Some c when Encode.imm_fits ~signed:true (-c) -> Some (a, -c)
    | _ -> None
  in
  match imm_form with
  | Some (x, 0) -> eval_i ctx x
  | Some (x, c) ->
      let vx = eval_i ctx x in
      let d = if vx.iowned then vx.ir else alloc_int ctx in
      Builder.emit ctx.b (Insn.Alui (Add, d, vx.ir, c));
      { ir = d; iowned = true }
  | None ->
      let va = eval_i ctx a in
      let vb = eval_i ctx b in
      let d = result_reg ctx va vb in
      Builder.emit ctx.b (Insn.Alu ((match op with `Add -> Insn.Add | `Sub -> Insn.Sub), d, va.ir, vb.ir));
      release_others ctx d va vb;
      { ir = d; iowned = true }

and mul_const ctx (v : ival) c =
  if c = 0 then begin
    free_ival ctx v;
    let d = alloc_int ctx in
    Builder.emit ctx.b (Insn.Alui (Add, d, Reg.zero, 0));
    { ir = d; iowned = true }
  end
  else if c = 1 then
    if v.iowned then v
    else begin
      let d = alloc_int ctx in
      Builder.emit ctx.b (Insn.Alu (Add, d, v.ir, Reg.zero));
      { ir = d; iowned = true }
    end
  else begin
    let d = if v.iowned then v.ir else alloc_int ctx in
    if c > 1 && Bits.is_pow2 c then Builder.emit ctx.b (Insn.Shift (Sll, d, v.ir, Bits.log2 c))
    else begin
      let tc = alloc_int ctx in
      Builder.li ctx.b tc c;
      Builder.emit ctx.b (Insn.Mul (d, v.ir, tc));
      free_int ctx tc
    end;
    { ir = d; iowned = true }
  end

(* Byte address of an array element: base + 4 * row-major offset. *)
and eval_addr ctx arr subs =
  let dims =
    match Hashtbl.find_opt ctx.dims arr with
    | Some d -> d
    | None -> failwith ("Codegen: unknown array " ^ arr)
  in
  let rec flatten subs dims =
    match (subs, dims) with
    | [ s ], [ _ ] -> s
    | s :: rest_s, _ :: rest_d ->
        let stride = List.fold_left ( * ) 1 rest_d in
        Ir.Iadd (Ir.Imul (s, Ir.Iconst stride), flatten rest_s rest_d)
    | _, _ -> failwith "Codegen: subscript/dimension mismatch"
  in
  let voff = mul_const ctx (eval_i ctx (flatten subs dims)) 4 in
  Builder.la ctx.b (Reg.r 1) (data_label arr);
  let d = if voff.iowned then voff.ir else alloc_int ctx in
  Builder.emit ctx.b (Insn.Alu (Add, d, voff.ir, Reg.r 1));
  { ir = d; iowned = true }

let rec eval_f ctx (e : Ir.fexpr) : fval =
  match e with
  | Ir.Fconst c ->
      let d = alloc_fp ctx in
      Builder.lf ctx.b d c;
      { fr = d; fowned = true }
  | Fvar v -> read_fp_scalar ctx v
  | Fload (arr, subs) ->
      let addr = eval_addr ctx arr subs in
      let d = alloc_fp ctx in
      Builder.emit ctx.b (Insn.Lwf (d, addr.ir, 0));
      free_ival ctx addr;
      { fr = d; fowned = true }
  | Fadd (a, b) -> fbin ctx Insn.Fadd a b
  | Fsub (a, b) -> fbin ctx Insn.Fsub a b
  | Fmul (a, b) -> fbin ctx Insn.Fmul a b
  | Fdiv (a, b) -> fbin ctx Insn.Fdiv a b
  | Fneg a -> funary ctx Insn.Fneg a
  | Fabs a -> funary ctx Insn.Fabs a
  | Fsqrt a -> funary ctx Insn.Fsqrt a
  | Fofint a ->
      let v = eval_i ctx a in
      let d = alloc_fp ctx in
      Builder.emit ctx.b (Insn.Cvtsw (d, v.ir));
      free_ival ctx v;
      { fr = d; fowned = true }

and fbin ctx op a b =
  let va = eval_f ctx a in
  let vb = eval_f ctx b in
  let d = fresult_reg ctx va vb in
  Builder.emit ctx.b (Insn.Fpu (op, d, va.fr, vb.fr));
  frelease_others ctx d va vb;
  { fr = d; fowned = true }

and funary ctx op a =
  let va = eval_f ctx a in
  let d = if va.fowned then va.fr else alloc_fp ctx in
  Builder.emit ctx.b (Insn.Fpu (op, d, va.fr, Reg.f 0));
  { fr = d; fowned = true }

(* Evaluate a condition; branch to [target] when the condition is FALSE. *)
let branch_if_false ctx cond target =
  match cond with
  | Ir.Cilt (a, b) ->
      let va = eval_i ctx a in
      let vb = eval_i ctx b in
      let d = result_reg ctx va vb in
      Builder.emit ctx.b (Insn.Alu (Slt, d, va.ir, vb.ir));
      release_others ctx d va vb;
      Builder.br ctx.b Insn.Beq d Reg.zero target;
      free_int ctx d
  | Cieq (a, b) ->
      let va = eval_i ctx a in
      let vb = eval_i ctx b in
      Builder.br ctx.b Insn.Bne va.ir vb.ir target;
      free_ival ctx va;
      free_ival ctx vb
  | Clt (a, b) | Cle (a, b) | Ceq (a, b) ->
      let op =
        match cond with
        | Clt _ -> Insn.Flt
        | Cle _ -> Insn.Fle
        | Ceq _ -> Insn.Feq
        | Cilt _ | Cieq _ -> assert false
      in
      let va = eval_f ctx a in
      let vb = eval_f ctx b in
      let d = alloc_int ctx in
      Builder.emit ctx.b (Insn.Fcmp (op, d, va.fr, vb.fr));
      free_fval ctx va;
      free_fval ctx vb;
      Builder.br ctx.b Insn.Beq d Reg.zero target;
      free_int ctx d

let rec gen_stmt ctx (s : Ir.stmt) =
  match s with
  | Ir.Sfassign (v, e) -> write_fp_scalar ctx v (eval_f ctx e)
  | Siassign (v, e) -> write_int_scalar ctx v (eval_i ctx e)
  | Sfstore (arr, subs, e) ->
      let ve = eval_f ctx e in
      let addr = eval_addr ctx arr subs in
      Builder.emit ctx.b (Insn.Swf (ve.fr, addr.ir, 0));
      free_ival ctx addr;
      free_fval ctx ve
  | Sistore (arr, subs, e) ->
      let ve = eval_i ctx e in
      let addr = eval_addr ctx arr subs in
      Builder.emit ctx.b (Insn.Sw (ve.ir, addr.ir, 0));
      free_ival ctx addr;
      free_ival ctx ve
  | Sif (cond, then_s, else_s) ->
      let l_else = Builder.fresh_label ctx.b "else" in
      let l_end = Builder.fresh_label ctx.b "endif" in
      branch_if_false ctx cond (if else_s = [] then l_end else l_else);
      List.iter (gen_stmt ctx) then_s;
      if else_s <> [] then begin
        Builder.j ctx.b l_end;
        Builder.label ctx.b l_else;
        List.iter (gen_stmt ctx) else_s
      end;
      Builder.label ctx.b l_end
  | Scall name -> Builder.jal ctx.b ("proc_" ^ name)
  | Sfor { var; lo; hi; body } ->
      let idx =
        match home ctx var with
        | Hreg r -> r
        | Hmem _ -> failwith (Printf.sprintf "Codegen: loop index %s spilled to memory" var)
      in
      (* idx = lo. The bound is re-evaluated at every test rather than
         held in a temporary: procedure bodies share the temporary pool,
         so no temporary may be live across a statement boundary. *)
      let vlo = eval_i ctx lo in
      if vlo.ir <> idx then Builder.emit ctx.b (Insn.Alu (Add, idx, vlo.ir, Reg.zero));
      free_ival ctx vlo;
      let test_bound cond target =
        match const_eval hi with
        | Some c when Encode.imm_fits ~signed:true c ->
            let t = alloc_int ctx in
            Builder.emit ctx.b (Insn.Alui (Slt, t, idx, c));
            Builder.br ctx.b cond t Reg.zero target;
            free_int ctx t
        | Some _ | None ->
            let vhi = eval_i ctx hi in
            let t = if vhi.iowned then vhi.ir else alloc_int ctx in
            Builder.emit ctx.b (Insn.Alu (Slt, t, idx, vhi.ir));
            Builder.br ctx.b cond t Reg.zero target;
            free_int ctx t
      in
      let l_head = Builder.fresh_label ctx.b ("loop_" ^ var) in
      let l_end = Builder.fresh_label ctx.b ("endloop_" ^ var) in
      (* Zero-trip guard: skip when idx >= hi. *)
      test_bound Insn.Beq l_end;
      let head_addr = Builder.here ctx.b in
      Builder.label ctx.b l_head;
      ctx.depth <- ctx.depth + 1;
      let infos_before = List.length ctx.infos in
      List.iter (gen_stmt ctx) body;
      let innermost = List.length ctx.infos = infos_before in
      ctx.depth <- ctx.depth - 1;
      Builder.emit ctx.b (Insn.Alui (Add, idx, idx, 1));
      (* Back edge: loop while idx < hi. *)
      test_bound Insn.Bne l_head;
      let tail_addr = Builder.here ctx.b - 4 in
      ctx.infos <-
        {
          li_var = var;
          li_depth = ctx.depth;
          li_body_insns = ((tail_addr - head_addr) / 4) + 1;
          li_innermost = innermost;
        }
        :: ctx.infos;
      Builder.label ctx.b l_end

(* ---- program-level assembly ---- *)

let collect_loop_vars p =
  let rec of_stmt acc = function
    | Ir.Sfor { var; body; _ } -> List.fold_left of_stmt (var :: acc) body
    | Sif (_, a, b) -> List.fold_left of_stmt (List.fold_left of_stmt acc a) b
    | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ | Scall _ -> acc
  in
  let acc = List.fold_left of_stmt [] p.Ir.main in
  let acc = List.fold_left (fun acc (_, body) -> List.fold_left of_stmt acc body) acc p.Ir.procs in
  List.sort_uniq compare acc

let index_pattern_float k = 1.0 +. (float_of_int (k mod 13) *. 0.25)
let index_pattern_int k = ((k * 13) mod 64) - 17

let compile_info ?text_base p =
  (match Ir.validate p with
  | Ok () -> ()
  | Error m -> invalid_arg ("Codegen.compile: " ^ m));
  let b = Builder.create ?text_base () in
  let homes = Hashtbl.create 32 in
  let dims = Hashtbl.create 16 in
  (* Scalar allocation: loop indices first (they must be registers), then
     the declared scalars; overflow spills to memory words. *)
  let int_homes = List.map (fun n -> Reg.r n) [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28 ] in
  let fp_homes = List.map (fun n -> Reg.f n) [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28; 29; 30; 31 ] in
  let loop_vars = collect_loop_vars p in
  let assign_homes names pool is_float =
    let pool = ref pool in
    List.iter
      (fun name ->
        match !pool with
        | r :: rest ->
            Hashtbl.replace homes name (Hreg r);
            pool := rest
        | [] ->
            let label = "sc_" ^ name in
            (if is_float then Builder.data_float b label [| 0.0 |]
             else Builder.data_word b label [| 0 |]);
            Hashtbl.replace homes name (Hmem label))
      names;
    !pool
  in
  let remaining = assign_homes loop_vars int_homes false in
  let scalars = List.filter (fun v -> not (List.mem v loop_vars)) p.Ir.int_scalars in
  ignore (assign_homes scalars remaining false);
  ignore (assign_homes p.Ir.float_scalars fp_homes true);
  (* Arrays: data blocks with deterministic initial contents. *)
  List.iter
    (fun (a : Ir.array_decl) ->
      let n = List.fold_left ( * ) 1 a.a_dims in
      Hashtbl.replace dims a.a_name a.a_dims;
      match (a.a_float, a.a_init) with
      | true, `Zero -> Builder.data_float b (data_label a.a_name) (Array.make n 0.0)
      | true, `Index_pattern ->
          Builder.data_float b (data_label a.a_name) (Array.init n index_pattern_float)
      | false, `Zero -> Builder.data_word b (data_label a.a_name) (Array.make n 0)
      | false, `Index_pattern ->
          Builder.data_word b (data_label a.a_name) (Array.init n index_pattern_int))
    p.Ir.arrays;
  let ctx =
    {
      b;
      homes;
      dims;
      int_temps = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ];
      fp_temps = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ] |> List.map (fun n -> Reg.f n);
      infos = [];
      depth = 0;
      procs = p.Ir.procs;
    }
  in
  Builder.label b "main";
  List.iter (gen_stmt ctx) p.Ir.main;
  Builder.emit b Insn.Halt;
  List.iter
    (fun (name, body) ->
      Builder.label b ("proc_" ^ name);
      List.iter (gen_stmt ctx) body;
      Builder.emit b (Insn.Jr Reg.ra))
    p.Ir.procs;
  (Builder.finish ~entry_label:"main" b, List.rev ctx.infos)

let compile ?text_base p = fst (compile_info ?text_base p)
