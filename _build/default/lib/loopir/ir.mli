(** A small structured loop-nest IR, in the spirit of the FORTRAN-77 array
    kernels the paper evaluates.

    Programs are built from counted [For] loops over multi-dimensional
    arrays of single-precision floats (plus integer arrays for tests),
    global scalars, conditionals, and parameterless procedures operating on
    globals. The workloads are written in this IR and compiled to RIQ32 by
    {!Codegen}; the paper's Section 4 experiment applies {!Distribute} at
    this level before code generation. *)

type iexpr =
  | Iconst of int
  | Ivar of string (** integer scalar or loop index *)
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr
  | Iload of string * iexpr list (** integer array element *)

type fexpr =
  | Fconst of float
  | Fvar of string (** float scalar *)
  | Fload of string * iexpr list (** float array element, row-major *)
  | Fadd of fexpr * fexpr
  | Fsub of fexpr * fexpr
  | Fmul of fexpr * fexpr
  | Fdiv of fexpr * fexpr
  | Fneg of fexpr
  | Fabs of fexpr
  | Fsqrt of fexpr
  | Fofint of iexpr

type cond =
  | Clt of fexpr * fexpr
  | Cle of fexpr * fexpr
  | Ceq of fexpr * fexpr
  | Cilt of iexpr * iexpr
  | Cieq of iexpr * iexpr

type stmt =
  | Sfassign of string * fexpr
  | Siassign of string * iexpr
  | Sfstore of string * iexpr list * fexpr
  | Sistore of string * iexpr list * iexpr
  | Sfor of { var : string; lo : iexpr; hi : iexpr; body : stmt list }
      (** [for var = lo; var < hi; var++] *)
  | Sif of cond * stmt list * stmt list
  | Scall of string

type array_decl = {
  a_name : string;
  a_dims : int list;
  a_init : [ `Zero | `Index_pattern ];
      (** [`Index_pattern] fills element [k] (flattened) with a small
          deterministic value derived from [k], so results are non-trivial
          and differential tests compare meaningful data. *)
  a_float : bool;
}

type program = {
  arrays : array_decl list;
  int_scalars : string list;
  float_scalars : string list;
  procs : (string * stmt list) list;
  main : stmt list;
}

val validate : program -> (unit, string) result
(** Checks that every referenced array, scalar, procedure and loop index is
    declared, dimensions match, loop indices are not assigned, and
    procedure calls are not recursive. *)

(** {2 Access sets (used by the dependence test)} *)

type access = { arr : string; subs : iexpr list }

val reads_of_stmt : stmt -> string list * access list
(** Scalar names and array accesses read (transitively, including nested
    loops and both branches of conditionals; procedure bodies must be
    resolved by the caller — see {!Distribute}). *)

val writes_of_stmt : stmt -> string list * access list

val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
