(* Loop interchange with a joint direction-vector legality test: both loop
   variables are analysed simultaneously across the subscript dimensions,
   unlike Distribute's single-variable distances. *)

let rec mentions v (e : Ir.iexpr) =
  match e with
  | Ir.Iconst _ -> false
  | Ivar x -> x = v
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> mentions v a || mentions v b
  | Iload (_, subs) -> List.exists (mentions v) subs

(* [v + constant] form, or None. *)
let affine_of v (e : Ir.iexpr) =
  match e with
  | Ir.Ivar x when x = v -> Some 0
  | Iadd (Ivar x, Iconst c) when x = v -> Some c
  | Iadd (Iconst c, Ivar x) when x = v -> Some c
  | Isub (Ivar x, Iconst c) when x = v -> Some (-c)
  | _ -> None

(* All (write, access) array pairs over the same array between any two
   statements of the body (including a statement with itself). *)
let conflicting_pairs procs body =
  let accesses stmt =
    let _, ra, _, wa = Distribute.stmt_accesses ~procs stmt in
    (wa, ra)
  in
  let alls = List.map accesses body in
  let pairs = ref [] in
  List.iter
    (fun (wa, _) ->
      List.iter
        (fun (wa', ra') ->
          List.iter
            (fun (w : Ir.access) ->
              List.iter
                (fun (o : Ir.access) -> if w.Ir.arr = o.Ir.arr then pairs := (w, o) :: !pairs)
                (ra' @ wa'))
            wa)
        alls)
    alls;
  !pairs

(* Per-variable dependence distance for one access pair: [Known d], or
   [Free] when the variable does not constrain the pair. *)
type vdist = Known of int | Free

let pair_vdists ~outer ~inner (w : Ir.access) (o : Ir.access) =
  if List.length w.Ir.subs <> List.length o.Ir.subs then `Unknown
  else begin
    let douter = ref None and dinner = ref None in
    let constrain slot d =
      match !slot with
      | None ->
          slot := Some d;
          `Ok
      | Some d' -> if d = d' then `Ok else `Never
    in
    let rec go dims =
      match dims with
      | [] ->
          `Vec
            ( (match !douter with Some d -> Known d | None -> Free),
              match !dinner with Some d -> Known d | None -> Free )
      | (sw, so) :: rest -> (
          match
            (affine_of outer sw, affine_of outer so, affine_of inner sw, affine_of inner so)
          with
          | Some cw, Some co, None, None -> (
              match constrain douter (cw - co) with `Ok -> go rest | `Never -> `Never)
          | None, None, Some cw, Some co -> (
              match constrain dinner (cw - co) with `Ok -> go rest | `Never -> `Never)
          | _ -> (
              match (sw, so) with
              | Ir.Iconst a, Ir.Iconst b -> if a = b then go rest else `Never
              | _ ->
                  if sw = so && (not (mentions outer sw)) && not (mentions inner sw) then
                    go rest
                  else `Unknown))
    in
    go (List.combine w.Ir.subs o.Ir.subs)
  end

let legal_to_swap p ~outer ~inner body =
  let can_pos = function Known d -> d > 0 | Free -> true in
  let can_neg = function Known d -> d < 0 | Free -> true in
  List.for_all
    (fun (w, o) ->
      match pair_vdists ~outer ~inner w o with
      | `Never -> true
      | `Unknown -> false
      | `Vec (dout, dinn) ->
          (* Interchange reverses a dependence whose direction vector is
             (positive, negative) in either orientation of the pair. *)
          not ((can_pos dout && can_neg dinn) || (can_neg dout && can_pos dinn)))
    (conflicting_pairs p.Ir.procs body)

let interchange p stmt =
  match stmt with
  | Ir.Sfor
      {
        var = outer;
        lo = olo;
        hi = ohi;
        body = [ Ir.Sfor { var = inner; lo = ilo; hi = ihi; body } ];
      } ->
      if mentions outer ilo || mentions outer ihi || mentions inner olo || mentions inner ohi
      then None
      else if legal_to_swap p ~outer ~inner body then
        Some
          (Ir.Sfor
             {
               var = inner;
               lo = ilo;
               hi = ihi;
               body = [ Ir.Sfor { var = outer; lo = olo; hi = ohi; body } ];
             })
      else None
  | Ir.Sfor _ | Sif _ | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ | Scall _ -> None

let interchange_program p =
  let count = ref 0 in
  let rec go stmt =
    match interchange p stmt with
    | Some swapped ->
        incr count;
        swapped
    | None -> (
        match stmt with
        | Ir.Sfor { var; lo; hi; body } -> Ir.Sfor { var; lo; hi; body = List.map go body }
        | Sif (c, a, b) -> Ir.Sif (c, List.map go a, List.map go b)
        | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ | Scall _ -> stmt)
  in
  let p' =
    {
      p with
      Ir.main = List.map go p.Ir.main;
      procs = List.map (fun (name, body) -> (name, List.map go body)) p.Ir.procs;
    }
  in
  (p', !count)
