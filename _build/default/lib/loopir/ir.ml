type iexpr =
  | Iconst of int
  | Ivar of string
  | Iadd of iexpr * iexpr
  | Isub of iexpr * iexpr
  | Imul of iexpr * iexpr
  | Iload of string * iexpr list

type fexpr =
  | Fconst of float
  | Fvar of string
  | Fload of string * iexpr list
  | Fadd of fexpr * fexpr
  | Fsub of fexpr * fexpr
  | Fmul of fexpr * fexpr
  | Fdiv of fexpr * fexpr
  | Fneg of fexpr
  | Fabs of fexpr
  | Fsqrt of fexpr
  | Fofint of iexpr

type cond =
  | Clt of fexpr * fexpr
  | Cle of fexpr * fexpr
  | Ceq of fexpr * fexpr
  | Cilt of iexpr * iexpr
  | Cieq of iexpr * iexpr

type stmt =
  | Sfassign of string * fexpr
  | Siassign of string * iexpr
  | Sfstore of string * iexpr list * fexpr
  | Sistore of string * iexpr list * iexpr
  | Sfor of { var : string; lo : iexpr; hi : iexpr; body : stmt list }
  | Sif of cond * stmt list * stmt list
  | Scall of string

type array_decl = {
  a_name : string;
  a_dims : int list;
  a_init : [ `Zero | `Index_pattern ];
  a_float : bool;
}

type program = {
  arrays : array_decl list;
  int_scalars : string list;
  float_scalars : string list;
  procs : (string * stmt list) list;
  main : stmt list;
}

type access = { arr : string; subs : iexpr list }

(* ---- access-set computation ---- *)

let rec ivars_reads acc = function
  | Iconst _ -> acc
  | Ivar v -> (v :: fst acc, snd acc)
  | Iadd (a, b) | Isub (a, b) | Imul (a, b) -> ivars_reads (ivars_reads acc a) b
  | Iload (arr, subs) ->
      let acc = List.fold_left ivars_reads acc subs in
      (fst acc, { arr; subs } :: snd acc)

let rec fvars_reads acc = function
  | Fconst _ -> acc
  | Fvar v -> (v :: fst acc, snd acc)
  | Fload (arr, subs) ->
      let acc = List.fold_left ivars_reads acc subs in
      (fst acc, { arr; subs } :: snd acc)
  | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
      fvars_reads (fvars_reads acc a) b
  | Fneg a | Fabs a | Fsqrt a -> fvars_reads acc a
  | Fofint a -> ivars_reads acc a

let cond_reads acc = function
  | Clt (a, b) | Cle (a, b) | Ceq (a, b) -> fvars_reads (fvars_reads acc a) b
  | Cilt (a, b) | Cieq (a, b) -> ivars_reads (ivars_reads acc a) b

let rec stmt_reads acc stmt =
  match stmt with
  | Sfassign (_, e) -> fvars_reads acc e
  | Siassign (_, e) -> ivars_reads acc e
  | Sfstore (_, subs, e) -> fvars_reads (List.fold_left ivars_reads acc subs) e
  | Sistore (_, subs, e) -> ivars_reads (List.fold_left ivars_reads acc subs) e
  | Sfor { lo; hi; body; _ } ->
      let acc = ivars_reads (ivars_reads acc lo) hi in
      List.fold_left stmt_reads acc body
  | Sif (c, a, b) ->
      let acc = cond_reads acc c in
      List.fold_left stmt_reads (List.fold_left stmt_reads acc a) b
  | Scall _ -> acc (* resolved by the caller via the procedure table *)

let rec stmt_writes acc stmt =
  match stmt with
  | Sfassign (v, _) | Siassign (v, _) -> (v :: fst acc, snd acc)
  | Sfstore (arr, subs, _) | Sistore (arr, subs, _) -> (fst acc, { arr; subs } :: snd acc)
  | Sfor { var; body; _ } ->
      let acc = (var :: fst acc, snd acc) in
      List.fold_left stmt_writes acc body
  | Sif (_, a, b) -> List.fold_left stmt_writes (List.fold_left stmt_writes acc a) b
  | Scall _ -> acc

let reads_of_stmt stmt = stmt_reads ([], []) stmt
let writes_of_stmt stmt = stmt_writes ([], []) stmt

(* ---- validation ---- *)

let validate p =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let arrays = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace arrays a.a_name a) p.arrays;
  let scalars = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace scalars v `Int) p.int_scalars;
  List.iter (fun v -> Hashtbl.replace scalars v `Float) p.float_scalars;
  let procs = Hashtbl.create 16 in
  List.iter (fun (name, body) -> Hashtbl.replace procs name body) p.procs;
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let check_array name subs float_wanted =
    match Hashtbl.find_opt arrays name with
    | None -> bad "undeclared array %s" name
    | Some a ->
        if a.a_float <> float_wanted then bad "array %s element-type mismatch" name;
        if List.length subs <> List.length a.a_dims then
          bad "array %s used with %d subscripts (has %d dims)" name (List.length subs)
            (List.length a.a_dims)
  in
  let rec chk_i env = function
    | Iconst _ -> ()
    | Ivar v ->
        if (not (List.mem v env)) && Hashtbl.find_opt scalars v <> Some `Int then
          bad "undeclared integer variable %s" v
    | Iadd (a, b) | Isub (a, b) | Imul (a, b) ->
        chk_i env a;
        chk_i env b
    | Iload (arr, subs) ->
        check_array arr subs false;
        List.iter (chk_i env) subs
  in
  let rec chk_f env = function
    | Fconst _ -> ()
    | Fvar v -> if Hashtbl.find_opt scalars v <> Some `Float then bad "undeclared float %s" v
    | Fload (arr, subs) ->
        check_array arr subs true;
        List.iter (chk_i env) subs
    | Fadd (a, b) | Fsub (a, b) | Fmul (a, b) | Fdiv (a, b) ->
        chk_f env a;
        chk_f env b
    | Fneg a | Fabs a | Fsqrt a -> chk_f env a
    | Fofint a -> chk_i env a
  in
  let chk_c env = function
    | Clt (a, b) | Cle (a, b) | Ceq (a, b) ->
        chk_f env a;
        chk_f env b
    | Cilt (a, b) | Cieq (a, b) ->
        chk_i env a;
        chk_i env b
  in
  let rec chk_s env calling = function
    | Sfassign (v, e) ->
        if Hashtbl.find_opt scalars v <> Some `Float then bad "undeclared float %s" v;
        chk_f env e
    | Siassign (v, e) ->
        if List.mem v env then bad "assignment to loop index %s" v;
        if Hashtbl.find_opt scalars v <> Some `Int then bad "undeclared int %s" v;
        chk_i env e
    | Sfstore (arr, subs, e) ->
        check_array arr subs true;
        List.iter (chk_i env) subs;
        chk_f env e
    | Sistore (arr, subs, e) ->
        check_array arr subs false;
        List.iter (chk_i env) subs;
        chk_i env e
    | Sfor { var; lo; hi; body } ->
        if List.mem var env then bad "shadowed loop index %s" var;
        chk_i env lo;
        chk_i env hi;
        List.iter (chk_s (var :: env) calling) body
    | Sif (c, a, b) ->
        chk_c env c;
        List.iter (chk_s env calling) a;
        List.iter (chk_s env calling) b
    | Scall name -> (
        if List.mem name calling then bad "recursive procedure %s" name;
        match Hashtbl.find_opt procs name with
        | None -> bad "undeclared procedure %s" name
        | Some body -> List.iter (chk_s env (name :: calling)) body)
  in
  try
    List.iter
      (fun a ->
        if a.a_dims = [] || List.exists (fun d -> d <= 0) a.a_dims then
          bad "array %s has invalid dimensions" a.a_name)
      p.arrays;
    List.iter (fun (name, body) -> List.iter (chk_s [] [ name ]) body) p.procs;
    List.iter (chk_s [] []) p.main;
    Ok ()
  with Bad m -> err "%s" m

(* ---- pretty printing ---- *)

let rec pp_iexpr ppf = function
  | Iconst n -> Format.pp_print_int ppf n
  | Ivar v -> Format.pp_print_string ppf v
  | Iadd (a, b) -> Format.fprintf ppf "(%a + %a)" pp_iexpr a pp_iexpr b
  | Isub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_iexpr a pp_iexpr b
  | Imul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_iexpr a pp_iexpr b
  | Iload (arr, subs) -> pp_access ppf arr subs

and pp_access ppf arr subs =
  Format.fprintf ppf "%s[%a]" arr
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_iexpr)
    subs

let rec pp_fexpr ppf = function
  | Fconst f -> Format.fprintf ppf "%g" f
  | Fvar v -> Format.pp_print_string ppf v
  | Fload (arr, subs) -> pp_access ppf arr subs
  | Fadd (a, b) -> Format.fprintf ppf "(%a + %a)" pp_fexpr a pp_fexpr b
  | Fsub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_fexpr a pp_fexpr b
  | Fmul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_fexpr a pp_fexpr b
  | Fdiv (a, b) -> Format.fprintf ppf "(%a / %a)" pp_fexpr a pp_fexpr b
  | Fneg a -> Format.fprintf ppf "(-%a)" pp_fexpr a
  | Fabs a -> Format.fprintf ppf "abs(%a)" pp_fexpr a
  | Fsqrt a -> Format.fprintf ppf "sqrt(%a)" pp_fexpr a
  | Fofint a -> Format.fprintf ppf "float(%a)" pp_iexpr a

let pp_cond ppf = function
  | Clt (a, b) -> Format.fprintf ppf "%a < %a" pp_fexpr a pp_fexpr b
  | Cle (a, b) -> Format.fprintf ppf "%a <= %a" pp_fexpr a pp_fexpr b
  | Ceq (a, b) -> Format.fprintf ppf "%a == %a" pp_fexpr a pp_fexpr b
  | Cilt (a, b) -> Format.fprintf ppf "%a < %a" pp_iexpr a pp_iexpr b
  | Cieq (a, b) -> Format.fprintf ppf "%a == %a" pp_iexpr a pp_iexpr b

let rec pp_stmt ppf = function
  | Sfassign (v, e) -> Format.fprintf ppf "%s = %a" v pp_fexpr e
  | Siassign (v, e) -> Format.fprintf ppf "%s = %a" v pp_iexpr e
  | Sfstore (arr, subs, e) -> Format.fprintf ppf "%a = %a" pp_access_pair (arr, subs) pp_fexpr e
  | Sistore (arr, subs, e) -> Format.fprintf ppf "%a = %a" pp_access_pair (arr, subs) pp_iexpr e
  | Sfor { var; lo; hi; body } ->
      Format.fprintf ppf "@[<v 2>for %s = %a .. %a {@,%a@]@,}" var pp_iexpr lo pp_iexpr hi
        pp_body body
  | Sif (c, a, []) -> Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_cond c pp_body a
  | Sif (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,} else {@,%a@,}" pp_cond c pp_body a pp_body b
  | Scall name -> Format.fprintf ppf "call %s()" name

and pp_access_pair ppf (arr, subs) = pp_access ppf arr subs

and pp_body ppf body =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ()) pp_stmt ppf body

let pp_program ppf p =
  List.iter
    (fun a ->
      Format.fprintf ppf "%s %s[%s]@."
        (if a.a_float then "float" else "int")
        a.a_name
        (String.concat "][" (List.map string_of_int a.a_dims)))
    p.arrays;
  List.iter (fun (name, body) -> Format.fprintf ppf "@[<v 2>proc %s {@,%a@]@,}@." name pp_body body) p.procs;
  Format.fprintf ppf "@[<v 2>main {@,%a@]@,}@." pp_body p.main
