open Riq_asm

(** RIQ32 code generation for the loop-nest IR.

    Register conventions: [r1] is the assembler temporary, [r2..r15] the
    integer expression-temporary pool, [r16..r28] hold loop indices and
    integer scalars, [f0..f15] are float temporaries and [f16..f31] float
    scalars. Scalars that do not fit their register pool are spilled to
    memory words and reloaded around each use. Arrays live in the data
    segment, row-major, with `Index_pattern` initialisation materialised at
    load time (no runtime initialisation code).

    The generator performs just enough strength reduction to keep loop
    bodies realistic (constant folding on subscripts, shifts for
    power-of-two multiplies); it deliberately does {e not} hoist array base
    addresses or subscript computations, mirroring the modest code quality
    of the era's compilers at [-O1] that the paper's loop-size discussion
    assumes. *)

type loop_info = {
  li_var : string;
  li_depth : int; (** 0 = outermost *)
  li_body_insns : int; (** static instructions from head label through the backward branch *)
  li_innermost : bool; (** no loop nested inside this one *)
}

val compile : ?text_base:int -> Ir.program -> Program.t
(** Raises [Invalid_argument] if [Ir.validate] rejects the program. *)

val compile_info : ?text_base:int -> Ir.program -> Program.t * loop_info list
(** Also report the static size of every loop body — the quantity the
    paper's capturability condition compares against the issue-queue
    size. *)
