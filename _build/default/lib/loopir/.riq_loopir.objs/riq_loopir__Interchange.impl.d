lib/loopir/interchange.ml: Distribute Ir List
