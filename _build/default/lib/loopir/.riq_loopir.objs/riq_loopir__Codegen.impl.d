lib/loopir/codegen.ml: Array Bits Builder Encode Hashtbl Insn Ir List Printf Reg Riq_asm Riq_isa Riq_util
