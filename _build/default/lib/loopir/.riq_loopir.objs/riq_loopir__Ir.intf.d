lib/loopir/ir.mli: Format
