lib/loopir/unroll.mli: Ir
