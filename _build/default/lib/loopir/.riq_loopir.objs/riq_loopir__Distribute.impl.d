lib/loopir/distribute.ml: Array Ir List
