lib/loopir/distribute.mli: Ir
