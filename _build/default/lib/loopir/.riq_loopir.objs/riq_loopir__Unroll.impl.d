lib/loopir/unroll.ml: Fun Ir List
