lib/loopir/ir.ml: Format Hashtbl List Printf String
