lib/loopir/interchange.mli: Ir
