lib/loopir/codegen.mli: Ir Program Riq_asm
