let rec sub_i v e (x : Ir.iexpr) : Ir.iexpr =
  match x with
  | Ir.Iconst _ -> x
  | Ivar name -> if name = v then e else x
  | Iadd (a, b) -> Ir.Iadd (sub_i v e a, sub_i v e b)
  | Isub (a, b) -> Ir.Isub (sub_i v e a, sub_i v e b)
  | Imul (a, b) -> Ir.Imul (sub_i v e a, sub_i v e b)
  | Iload (arr, subs) -> Ir.Iload (arr, List.map (sub_i v e) subs)

let rec sub_f v e (x : Ir.fexpr) : Ir.fexpr =
  match x with
  | Ir.Fconst _ | Fvar _ -> x
  | Fload (arr, subs) -> Ir.Fload (arr, List.map (sub_i v e) subs)
  | Fadd (a, b) -> Ir.Fadd (sub_f v e a, sub_f v e b)
  | Fsub (a, b) -> Ir.Fsub (sub_f v e a, sub_f v e b)
  | Fmul (a, b) -> Ir.Fmul (sub_f v e a, sub_f v e b)
  | Fdiv (a, b) -> Ir.Fdiv (sub_f v e a, sub_f v e b)
  | Fneg a -> Ir.Fneg (sub_f v e a)
  | Fabs a -> Ir.Fabs (sub_f v e a)
  | Fsqrt a -> Ir.Fsqrt (sub_f v e a)
  | Fofint a -> Ir.Fofint (sub_i v e a)

let sub_c v e (c : Ir.cond) : Ir.cond =
  match c with
  | Ir.Clt (a, b) -> Ir.Clt (sub_f v e a, sub_f v e b)
  | Cle (a, b) -> Ir.Cle (sub_f v e a, sub_f v e b)
  | Ceq (a, b) -> Ir.Ceq (sub_f v e a, sub_f v e b)
  | Cilt (a, b) -> Ir.Cilt (sub_i v e a, sub_i v e b)
  | Cieq (a, b) -> Ir.Cieq (sub_i v e a, sub_i v e b)

let rec substitute_index v e (s : Ir.stmt) : Ir.stmt =
  match s with
  | Ir.Sfassign (name, x) -> Ir.Sfassign (name, sub_f v e x)
  | Siassign (name, x) -> Ir.Siassign (name, sub_i v e x)
  | Sfstore (arr, subs, x) -> Ir.Sfstore (arr, List.map (sub_i v e) subs, sub_f v e x)
  | Sistore (arr, subs, x) -> Ir.Sistore (arr, List.map (sub_i v e) subs, sub_i v e x)
  | Sfor { var; lo; hi; body } ->
      Ir.Sfor
        {
          var;
          lo = sub_i v e lo;
          hi = sub_i v e hi;
          body = List.map (substitute_index v e) body;
        }
  | Sif (c, a, b) ->
      Ir.Sif (sub_c v e c, List.map (substitute_index v e) a, List.map (substitute_index v e) b)
  | Scall _ -> s

let rec unroll_stmt ~factor (s : Ir.stmt) : Ir.stmt list =
  if factor < 2 then invalid_arg "Unroll.unroll_stmt: factor must be >= 2";
  match s with
  | Ir.Sfor { var; lo = Ir.Iconst lo; hi = Ir.Iconst hi; body } when hi - lo >= factor ->
      let body = List.concat_map (unroll_stmt ~factor) body in
      let trip = hi - lo in
      let main_trips = trip / factor in
      let split = lo + (main_trips * factor) in
      (* Main loop: a compact index u = 0 .. main_trips, each iteration
         executing the copies for index lo + u*factor + k. *)
      let copies =
        List.concat_map
          (fun k ->
            let idx =
              Ir.Iadd
                (Ir.Iadd (Ir.Iconst lo, Ir.Imul (Ir.Ivar var, Ir.Iconst factor)), Ir.Iconst k)
            in
            List.map (substitute_index var idx) body)
          (List.init factor Fun.id)
      in
      let main_loop = Ir.Sfor { var; lo = Ir.Iconst 0; hi = Ir.Iconst main_trips; body = copies } in
      let remainder =
        if split = hi then []
        else [ Ir.Sfor { var; lo = Ir.Iconst split; hi = Ir.Iconst hi; body } ]
      in
      main_loop :: remainder
  | Sfor { var; lo; hi; body } ->
      [ Ir.Sfor { var; lo; hi; body = List.concat_map (unroll_stmt ~factor) body } ]
  | Sif (c, a, b) ->
      [ Ir.Sif (c, List.concat_map (unroll_stmt ~factor) a, List.concat_map (unroll_stmt ~factor) b) ]
  | Sfassign _ | Siassign _ | Sfstore _ | Sistore _ | Scall _ -> [ s ]

let unroll_program ~factor (p : Ir.program) =
  {
    p with
    Ir.main = List.concat_map (unroll_stmt ~factor) p.Ir.main;
    procs =
      List.map
        (fun (name, body) -> (name, List.concat_map (unroll_stmt ~factor) body))
        p.Ir.procs;
  }
