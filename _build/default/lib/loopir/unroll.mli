(** Loop unrolling.

    [unroll_stmt ~factor] rewrites a counted loop with {e constant} bounds
    into a main loop that executes [factor] copies of the body per
    iteration (the k-th copy sees [index + k]) followed by a remainder
    loop for the leftover iterations. The copies execute in the original
    iteration order, so the transformation preserves semantics for every
    loop of this IR (the index variable's value {e after} the loop is
    unspecified, as in Fortran DO semantics); loops with non-constant
    bounds or a trip count smaller than the factor are left unchanged.

    In the context of the paper this is the {e opposite} lever to loop
    distribution: unrolling grows the static body, so a loop that fit the
    issue queue may stop being capturable, in exchange for less
    per-iteration control overhead. The `riq-sim fig unroll` ablation
    quantifies that trade-off. *)

val unroll_stmt : factor:int -> Ir.stmt -> Ir.stmt list
(** Unroll one statement, recursively descending into loop bodies and
    conditionals (innermost loops are unrolled first). [factor] must be
    at least 2. *)

val unroll_program : factor:int -> Ir.program -> Ir.program
(** Unroll every loop in main and in all procedures. *)

val substitute_index : string -> Ir.iexpr -> Ir.stmt -> Ir.stmt
(** [substitute_index v e stmt] replaces every read of variable [v] with
    the expression [e]. Exposed for tests; assumes [stmt] does not rebind
    [v] (guaranteed by {!Ir.validate}'s no-shadowing rule). *)
