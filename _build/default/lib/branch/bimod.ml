open Riq_util

type t = { table : Bytes.t; mask : int }

let create entries =
  if not (Bits.is_pow2 entries) then invalid_arg "Bimod.create: entries must be a power of two";
  { table = Bytes.make entries '\001'; mask = entries - 1 }

let entries t = Bytes.length t.table
let index t ~pc = (pc lsr 2) land t.mask
let counter t ~pc = Char.code (Bytes.get t.table (index t ~pc))
let predict t ~pc = counter t ~pc >= 2

let update t ~pc ~taken =
  let i = index t ~pc in
  let c = Char.code (Bytes.get t.table i) in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.table i (Char.chr c')
