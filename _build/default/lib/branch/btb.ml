open Riq_util

type entry = { mutable tag : int; mutable target : int; mutable valid : bool; mutable lru : int }

type t = {
  sets : int;
  ways : int;
  table : entry array;
  mutable clock : int;
  mutable n_lookup : int;
  mutable n_hit : int;
  mutable n_update : int;
}

let create ~sets ~ways =
  if not (Bits.is_pow2 sets) then invalid_arg "Btb.create: sets must be a power of two";
  if ways < 1 then invalid_arg "Btb.create: ways must be >= 1";
  {
    sets;
    ways;
    table =
      Array.init (sets * ways) (fun _ -> { tag = 0; target = 0; valid = false; lru = 0 });
    clock = 0;
    n_lookup = 0;
    n_hit = 0;
    n_update = 0;
  }

let set_and_tag t ~pc =
  let idx = pc lsr 2 in
  (idx land (t.sets - 1), idx / t.sets)

let find t ~pc =
  let set, tag = set_and_tag t ~pc in
  let base = set * t.ways in
  let found = ref None in
  for w = 0 to t.ways - 1 do
    let e = t.table.(base + w) in
    if e.valid && e.tag = tag then found := Some e
  done;
  !found

let lookup t ~pc =
  t.n_lookup <- t.n_lookup + 1;
  t.clock <- t.clock + 1;
  match find t ~pc with
  | Some e ->
      t.n_hit <- t.n_hit + 1;
      e.lru <- t.clock;
      Some e.target
  | None -> None

let update t ~pc ~target =
  t.n_update <- t.n_update + 1;
  t.clock <- t.clock + 1;
  match find t ~pc with
  | Some e ->
      e.target <- target;
      e.lru <- t.clock
  | None ->
      let set, tag = set_and_tag t ~pc in
      let base = set * t.ways in
      let victim = ref t.table.(base) in
      for w = 1 to t.ways - 1 do
        let e = t.table.(base + w) in
        let v = !victim in
        if (not e.valid) && v.valid then victim := e
        else if v.valid && e.valid && e.lru < v.lru then victim := e
      done;
      let v = !victim in
      v.tag <- tag;
      v.target <- target;
      v.valid <- true;
      v.lru <- t.clock

let lookups t = t.n_lookup
let hits t = t.n_hit
let updates t = t.n_update
