lib/branch/predictor.mli: Insn Riq_isa
