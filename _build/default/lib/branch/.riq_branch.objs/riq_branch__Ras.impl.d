lib/branch/ras.ml: Array
