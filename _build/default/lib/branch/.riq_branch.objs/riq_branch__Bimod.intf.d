lib/branch/bimod.mli:
