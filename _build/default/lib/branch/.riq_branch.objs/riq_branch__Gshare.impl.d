lib/branch/gshare.ml: Bits Bytes Char Riq_util
