lib/branch/btb.ml: Array Bits Riq_util
