lib/branch/btb.mli:
