lib/branch/bimod.ml: Bits Bytes Char Riq_util
