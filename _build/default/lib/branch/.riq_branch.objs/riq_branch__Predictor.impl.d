lib/branch/predictor.ml: Bimod Btb Gshare Insn Ras Riq_isa
