lib/branch/gshare.mli:
