lib/branch/ras.mli:
