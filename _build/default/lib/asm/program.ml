open Riq_isa

type data_init =
  | Words of { base : int; values : int array }
  | Floats of { base : int; values : float array }

type t = {
  text_base : int;
  code : Insn.t array;
  data : data_init list;
  entry : int;
  symbols : (string * int) list;
}

let make ?(text_base = 0x1000) ?(data = []) ?entry ?(symbols = []) code =
  if Array.length code = 0 then invalid_arg "Program.make: empty code";
  if text_base land 3 <> 0 then invalid_arg "Program.make: misaligned text base";
  List.iter
    (fun init ->
      let base = match init with Words { base; _ } | Floats { base; _ } -> base in
      if base land 3 <> 0 then invalid_arg "Program.make: misaligned data base")
    data;
  let entry = Option.value entry ~default:text_base in
  { text_base; code; data; entry; symbols }

let size_bytes t = 4 * Array.length t.code

let insn_at t pc =
  let idx = (pc - t.text_base) / 4 in
  if pc land 3 <> 0 || idx < 0 || idx >= Array.length t.code then None
  else Some t.code.(idx)

let address_of t name = List.assoc_opt name t.symbols

let float_word f = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF

let load t ~write_word =
  Array.iteri (fun i insn -> write_word (t.text_base + (4 * i)) (Encode.encode insn)) t.code;
  List.iter
    (fun init ->
      match init with
      | Words { base; values } ->
          Array.iteri (fun i v -> write_word (base + (4 * i)) (v land 0xFFFFFFFF)) values
      | Floats { base; values } ->
          Array.iteri (fun i v -> write_word (base + (4 * i)) (float_word v)) values)
    t.data

let pp_listing ppf t =
  let label_at =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (name, addr) -> Hashtbl.replace tbl addr name) t.symbols;
    Hashtbl.find_opt tbl
  in
  Array.iteri
    (fun i insn ->
      let addr = t.text_base + (4 * i) in
      (match label_at addr with
      | Some name -> Format.fprintf ppf "%s:@." name
      | None -> ());
      Format.fprintf ppf "  %08x:  %s@." addr (Insn.to_string insn))
    t.code
