lib/asm/builder.mli: Insn Program Reg Riq_isa
