lib/asm/program.ml: Array Encode Format Hashtbl Insn Int32 List Option Riq_isa
