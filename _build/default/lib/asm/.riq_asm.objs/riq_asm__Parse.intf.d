lib/asm/parse.mli: Program
