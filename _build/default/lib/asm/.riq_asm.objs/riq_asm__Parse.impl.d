lib/asm/parse.ml: Array Buffer Builder Insn List Option Printf Reg Riq_isa String
