lib/asm/builder.ml: Array Encode Hashtbl Insn List Option Printf Program Reg Riq_isa
