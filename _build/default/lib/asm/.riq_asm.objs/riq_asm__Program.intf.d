lib/asm/program.mli: Format Insn Riq_isa
