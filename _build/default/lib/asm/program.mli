open Riq_isa

(** An executable RIQ32 program image.

    A program is a contiguous text segment (instructions), a set of data
    initialisers, and an entry point. Simulators load the image into their
    own memory model via {!load}. *)

type data_init =
  | Words of { base : int; values : int array }
      (** 32-bit integer words starting at byte address [base]. *)
  | Floats of { base : int; values : float array }
      (** Single-precision floats, one word each, starting at [base]. *)

type t = {
  text_base : int; (** byte address of [code.(0)]; word-aligned *)
  code : Insn.t array;
  data : data_init list;
  entry : int; (** initial PC, usually [text_base] *)
  symbols : (string * int) list; (** label name -> byte address *)
}

val make :
  ?text_base:int -> ?data:data_init list -> ?entry:int ->
  ?symbols:(string * int) list -> Insn.t array -> t
(** [make code] builds a program; [text_base] defaults to [0x1000], [entry]
    to [text_base]. Raises [Invalid_argument] on a misaligned base or empty
    code. *)

val size_bytes : t -> int
(** Length of the text segment in bytes. *)

val insn_at : t -> int -> Insn.t option
(** [insn_at p pc] fetches the instruction at byte address [pc], or [None]
    when [pc] is outside the text segment. *)

val address_of : t -> string -> int option
(** Look up a label. *)

val load : t -> write_word:(int -> int -> unit) -> unit
(** Materialise the image: encodes each instruction into the text segment
    and writes every data initialiser. [write_word addr word] stores a
    32-bit word at byte address [addr]. *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing with addresses and labels. *)
