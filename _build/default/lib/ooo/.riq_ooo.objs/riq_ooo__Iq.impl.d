lib/ooo/iq.ml: Array Insn Riq_isa
