lib/ooo/lsq.ml: Array
