lib/ooo/rob.ml: Array Insn Riq_isa
