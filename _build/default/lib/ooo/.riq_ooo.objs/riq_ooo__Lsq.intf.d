lib/ooo/lsq.mli:
