lib/ooo/iq.mli: Insn Riq_isa
