lib/ooo/config.mli: Format Hierarchy Predictor Riq_branch Riq_mem Riq_power
