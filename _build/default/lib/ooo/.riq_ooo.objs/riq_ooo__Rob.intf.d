lib/ooo/rob.mli: Insn Riq_isa
