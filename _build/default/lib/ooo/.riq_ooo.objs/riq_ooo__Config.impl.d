lib/ooo/config.ml: Cache Format Hierarchy Predictor Riq_branch Riq_mem Riq_power
