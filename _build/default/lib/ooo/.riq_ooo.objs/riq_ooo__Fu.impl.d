lib/ooo/fu.ml: Array Insn Riq_isa
