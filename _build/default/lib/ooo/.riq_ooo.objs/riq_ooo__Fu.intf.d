lib/ooo/fu.mli: Insn Riq_isa
