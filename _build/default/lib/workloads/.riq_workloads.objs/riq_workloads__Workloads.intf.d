lib/workloads/workloads.mli: Codegen Ir Program Riq_asm Riq_loopir
