lib/workloads/workloads.ml: Codegen Distribute Ir List Riq_loopir
