open Riq_asm
open Riq_ooo
open Riq_core

(** Single-simulation driver used by every experiment. *)

type result = {
  stats : Processor.stats;
  icache_power : float; (** per-cycle, Figure 6 grouping *)
  bpred_power : float;
  iq_power : float;
  overhead_power : float;
  total_power : float;
  arch_ok : bool option; (** differential check result when requested *)
}

val simulate : ?check:bool -> ?cycle_limit:int -> Config.t -> Program.t -> result
(** Run to completion. [check] (default false) also runs the functional
    reference simulator and compares architectural states. Raises
    [Failure] if the cycle limit is hit or the differential check fails. *)

val reduction : float -> float -> float
(** [reduction base with_] = percent reduction, [100*(1 - with_/base)]. *)
