open Riq_workloads

(** The issue-queue size sweep shared by Figures 5-8: every benchmark at
    every queue size, with and without the reuse mechanism (ROB = queue
    size, LSQ = half, as in the paper's Section 3). Results are computed
    once and reused by all figure printers. *)

type cell = { baseline : Run.result; reuse : Run.result }

type t = {
  sizes : int list;
  benchmarks : Workloads.t list;
  cells : (string * (int * cell) list) list; (** benchmark name -> per-size *)
}

val default_sizes : int list
(** [32; 64; 128; 256], the paper's sweep. *)

val run :
  ?sizes:int list -> ?benchmarks:Workloads.t list -> ?check:bool ->
  ?progress:(string -> unit) -> unit -> t
(** [check] (default true) runs the differential validation on every
    simulation. [progress] is called with a short label before each run. *)

val cell : t -> bench:string -> size:int -> cell
