open Riq_ooo
open Riq_workloads

type cell = { baseline : Run.result; reuse : Run.result }

type t = {
  sizes : int list;
  benchmarks : Workloads.t list;
  cells : (string * (int * cell) list) list;
}

let default_sizes = [ 32; 64; 128; 256 ]

let run ?(sizes = default_sizes) ?(benchmarks = Workloads.all) ?(check = true)
    ?(progress = fun _ -> ()) () =
  let cells =
    List.map
      (fun w ->
        let program = Workloads.program w in
        let per_size =
          List.map
            (fun size ->
              progress (Printf.sprintf "%s/IQ%d" w.Workloads.name size);
              let baseline =
                Run.simulate ~check (Config.with_iq_size Config.baseline size) program
              in
              let reuse = Run.simulate ~check (Config.with_iq_size Config.reuse size) program in
              (size, { baseline; reuse }))
            sizes
        in
        (w.Workloads.name, per_size))
      benchmarks
  in
  { sizes; benchmarks; cells }

let cell t ~bench ~size =
  match List.assoc_opt bench t.cells with
  | None -> invalid_arg ("Sweep.cell: unknown benchmark " ^ bench)
  | Some per_size -> (
      match List.assoc_opt size per_size with
      | None -> invalid_arg (Printf.sprintf "Sweep.cell: size %d not swept" size)
      | Some c -> c)
