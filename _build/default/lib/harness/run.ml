open Riq_power
open Riq_core
open Riq_interp

type result = {
  stats : Processor.stats;
  icache_power : float;
  bpred_power : float;
  iq_power : float;
  overhead_power : float;
  total_power : float;
  arch_ok : bool option;
}

let simulate ?(check = false) ?(cycle_limit = 100_000_000) cfg program =
  let p = Processor.create cfg program in
  (match Processor.run ~cycle_limit p with
  | Processor.Halted -> ()
  | Processor.Cycle_limit -> failwith "Run.simulate: cycle limit exceeded");
  let arch_ok =
    if not check then None
    else begin
      let m = Machine.create program in
      match Machine.run m with
      | Machine.Halted ->
          Some (Machine.equal_arch (Machine.arch_state m) (Processor.arch_state p))
      | Machine.Insn_limit | Machine.Bad_pc _ ->
          failwith "Run.simulate: reference simulator did not halt"
    end
  in
  (match arch_ok with
  | Some false -> failwith "Run.simulate: architectural state mismatch"
  | Some true | None -> ());
  let acct = Processor.account p in
  {
    stats = Processor.stats p;
    icache_power = Account.group_power acct Component.G_icache;
    bpred_power = Account.group_power acct Component.G_bpred;
    iq_power = Account.group_power acct Component.G_iq;
    overhead_power = Account.group_power acct Component.G_overhead;
    total_power = Account.avg_power acct;
    arch_ok;
  }

let reduction base with_ = if base = 0. then 0. else 100. *. (1. -. (with_ /. base))
