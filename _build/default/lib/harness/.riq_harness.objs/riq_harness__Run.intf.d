lib/harness/run.mli: Config Processor Program Riq_asm Riq_core Riq_ooo
