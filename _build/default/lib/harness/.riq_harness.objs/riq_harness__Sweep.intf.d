lib/harness/sweep.mli: Riq_workloads Run Workloads
