lib/harness/sweep.ml: Config List Printf Riq_ooo Riq_workloads Run Workloads
