lib/harness/figures.ml: Array Config Format List Printf Processor Riq_branch Riq_core Riq_loopir Riq_ooo Riq_util Riq_workloads Run Stats Sweep Table Workloads
