lib/harness/run.ml: Account Component Machine Processor Riq_core Riq_interp Riq_power
