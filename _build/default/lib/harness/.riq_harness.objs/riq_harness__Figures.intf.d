lib/harness/figures.mli: Riq_util Sweep Table
