lib/util/bits.ml:
