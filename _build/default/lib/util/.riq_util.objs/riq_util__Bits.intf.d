lib/util/bits.mli:
