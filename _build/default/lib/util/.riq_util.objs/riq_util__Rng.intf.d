lib/util/rng.mli:
