lib/util/stats.mli:
