lib/util/table.mli:
