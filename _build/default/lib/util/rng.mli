(** Deterministic pseudo-random number generator (xoshiro256 star-star).

    The simulator must be bit-for-bit reproducible, so no global state and no
    dependence on [Random.self_init]. Every stream is derived from an
    explicit seed. *)

type t

val create : int -> t
(** [create seed] builds a generator. Two generators created with the same
    seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val bits64 : t -> int64
(** Next 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
