let mask n =
  if n < 0 || n > 32 then invalid_arg "Bits.mask";
  (1 lsl n) - 1

let extract w ~lo ~width = (w lsr lo) land mask width

let insert w ~lo ~width v =
  let m = mask width in
  w land lnot (m lsl lo) lor ((v land m) lsl lo)

let sign_extend v ~width =
  let v = v land mask width in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let to_u32 v = v land mask 32
let of_i32 v = sign_extend v ~width:32
let add32 a b = of_i32 (a + b)
let sub32 a b = of_i32 (a - b)
let mul32 a b = of_i32 (a * b)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_pow2 n) then invalid_arg "Bits.log2: not a power of two";
  let rec go k n = if n = 1 then k else go (k + 1) (n lsr 1) in
  go 0 n
