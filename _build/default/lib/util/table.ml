type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  cols : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  if cols = [] then invalid_arg "Table.create: no columns";
  { title; cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.cols then
    invalid_arg "Table.add_row: cell count does not match column count";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let headers = List.map fst t.cols in
  let data_rows =
    List.rev_map (function Cells c -> Some c | Sep -> None) t.rows
  in
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left
          (fun w row ->
            match row with
            | Some cells -> max w (String.length (List.nth cells i))
            | None -> w)
          (String.length h)
          data_rows)
      t.cols
  in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 1024 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let hline =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let emit_cells cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i cell ->
        let _, align = List.nth t.cols i in
        let w = List.nth widths i in
        Buffer.add_string buf (" " ^ pad align w cell ^ " |"))
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (hline ^ "\n");
  emit_cells headers;
  Buffer.add_string buf (hline ^ "\n");
  List.iter
    (fun row ->
      match row with
      | Cells c -> emit_cells c
      | Sep -> Buffer.add_string buf (hline ^ "\n"))
    (List.rev t.rows);
  Buffer.add_string buf hline;
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (String.concat "," (List.map (fun (h, _) -> csv_cell h) t.cols));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      match row with
      | Cells cells ->
          Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
          Buffer.add_char buf '\n'
      | Sep -> ())
    (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let cell_pct ?(digits = 1) v = Printf.sprintf "%.*f%%" digits v
