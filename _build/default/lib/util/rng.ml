type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to expand the seed into the four xoshiro words. *)
let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
