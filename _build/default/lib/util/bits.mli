(** Bit-field helpers for 32-bit instruction words and addresses.

    Words are carried in native [int]s (OCaml ints are 63-bit, so a 32-bit
    word always fits); all functions keep results inside 32 bits. *)

val mask : int -> int
(** [mask n] is an [n]-bit mask of ones, [0 <= n <= 32]. *)

val extract : int -> lo:int -> width:int -> int
(** [extract w ~lo ~width] reads an unsigned bit-field. *)

val insert : int -> lo:int -> width:int -> int -> int
(** [insert w ~lo ~width v] writes [v] (truncated to [width] bits) into [w]. *)

val sign_extend : int -> width:int -> int
(** Interpret the low [width] bits as a two's-complement value. *)

val to_u32 : int -> int
(** Truncate to an unsigned 32-bit value. *)

val of_i32 : int -> int
(** Truncate to 32 bits and sign-extend, i.e. the canonical signed view. *)

val add32 : int -> int -> int
(** 32-bit wrapping signed addition. *)

val sub32 : int -> int -> int
val mul32 : int -> int -> int

val log2 : int -> int
(** [log2 n] for an exact power of two [n >= 1]; raises otherwise. *)

val is_pow2 : int -> bool
