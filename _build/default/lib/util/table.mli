(** ASCII table rendering for experiment output.

    All figures of the paper are reproduced as textual tables whose rows and
    series mirror the plotted data, so the output of the bench harness can be
    compared against the paper directly. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a data row; the row must have exactly one cell per column. *)

val add_sep : t -> unit
(** Append a horizontal separator (e.g. before an average row). *)

val render : t -> string
(** Render to a string, including the title when present. *)

val to_csv : t -> string
(** Comma-separated rendering (header row + data rows; separators and the
    title are omitted; cells containing commas or quotes are quoted). *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_f : ?digits:int -> float -> string
(** Format a float cell with [digits] decimals (default 2). *)

val cell_pct : ?digits:int -> float -> string
(** Format a percentage cell, e.g. [12.34%]. *)
