let page_words = 1024 (* 4 KiB pages *)

type t = (int, int array) Hashtbl.t

let create () : t = Hashtbl.create 256

let check_addr addr =
  if addr < 0 then invalid_arg "Store: negative address";
  if addr land 3 <> 0 then invalid_arg (Printf.sprintf "Store: misaligned address 0x%x" addr)

let read_word t addr =
  check_addr addr;
  let word_idx = addr lsr 2 in
  match Hashtbl.find_opt t (word_idx / page_words) with
  | None -> 0
  | Some page -> page.(word_idx mod page_words)

let write_word t addr v =
  check_addr addr;
  let word_idx = addr lsr 2 in
  let page_idx = word_idx / page_words in
  let page =
    match Hashtbl.find_opt t page_idx with
    | Some page -> page
    | None ->
        let page = Array.make page_words 0 in
        Hashtbl.replace t page_idx page;
        page
  in
  page.(word_idx mod page_words) <- v land 0xFFFFFFFF

let read_byte t addr =
  if addr < 0 then invalid_arg "Store: negative address";
  let w = read_word t (addr land lnot 3) in
  (w lsr (8 * (addr land 3))) land 0xFF

let write_byte t addr v =
  if addr < 0 then invalid_arg "Store: negative address";
  let word_addr = addr land lnot 3 in
  let shift = 8 * (addr land 3) in
  let w = read_word t word_addr in
  write_word t word_addr (w land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift))

let read_half t addr =
  if addr < 0 then invalid_arg "Store: negative address";
  if addr land 1 <> 0 then invalid_arg (Printf.sprintf "Store: misaligned halfword 0x%x" addr);
  let w = read_word t (addr land lnot 3) in
  (w lsr (8 * (addr land 3))) land 0xFFFF

let write_half t addr v =
  if addr < 0 then invalid_arg "Store: negative address";
  if addr land 1 <> 0 then invalid_arg (Printf.sprintf "Store: misaligned halfword 0x%x" addr);
  let word_addr = addr land lnot 3 in
  let shift = 8 * (addr land 3) in
  let w = read_word t word_addr in
  write_word t word_addr (w land lnot (0xFFFF lsl shift) lor ((v land 0xFFFF) lsl shift))

let read_float t addr = Int32.float_of_bits (Int32.of_int (read_word t addr))

let write_float t addr v = write_word t addr (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF)

let copy t =
  let t' = create () in
  Hashtbl.iter (fun k page -> Hashtbl.replace t' k (Array.copy page)) t;
  t'

let fold_nonzero t ~init ~f =
  let pages = Hashtbl.fold (fun k _ acc -> k :: acc) t [] in
  let pages = List.sort compare pages in
  List.fold_left
    (fun acc page_idx ->
      let page = Hashtbl.find t page_idx in
      let acc = ref acc in
      Array.iteri
        (fun i v ->
          if v <> 0 then acc := f !acc (4 * ((page_idx * page_words) + i)) v)
        page;
      !acc)
    init pages

let equal a b =
  let dump t = fold_nonzero t ~init:[] ~f:(fun acc addr v -> (addr, v) :: acc) in
  dump a = dump b
