lib/mem/store.ml: Array Hashtbl Int32 List Printf
