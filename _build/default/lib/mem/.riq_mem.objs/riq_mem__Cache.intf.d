lib/mem/cache.mli:
