lib/mem/store.mli:
