lib/mem/cache.ml: Array Bits Riq_util Stats
