lib/mem/hierarchy.ml: Cache Hashtbl Option
