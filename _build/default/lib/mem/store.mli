(** Sparse word-addressable backing store.

    Holds the architectural memory contents of a simulation: a flat 32-bit
    byte-addressed space of 32-bit words, materialised in 4 KiB pages on
    first touch. Unwritten memory reads as zero. Timing lives in {!Cache}
    and {!Hierarchy}; this module is pure data.

    Floats are stored in IEEE-754 single precision, so a float written and
    read back goes through a 32-bit round-trip exactly as it would on the
    modelled machine. *)

type t

val create : unit -> t

val read_word : t -> int -> int
(** [read_word t addr] reads the aligned 32-bit word at byte address
    [addr]. Raises [Invalid_argument] on misaligned or negative address. *)

val write_word : t -> int -> int -> unit
(** Stores the low 32 bits of the value. *)

val read_float : t -> int -> float
val write_float : t -> int -> float -> unit

(** {2 Sub-word access}

    Bytes are little-endian within their word. Byte accesses accept any
    address; halfword accesses must be 2-aligned. *)

val read_byte : t -> int -> int
(** Unsigned byte value, [0..255]. *)

val write_byte : t -> int -> int -> unit
(** Stores the low 8 bits. *)

val read_half : t -> int -> int
(** Unsigned halfword value, [0..65535]. *)

val write_half : t -> int -> int -> unit

val copy : t -> t
(** Deep copy, used to give each simulator its own image of a program. *)

val fold_nonzero : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [fold_nonzero t ~init ~f] folds [f acc addr word] over all words whose
    value is non-zero, in increasing address order. Used by differential
    tests to compare final memory states. *)

val equal : t -> t -> bool
(** Equality of non-zero contents. *)
